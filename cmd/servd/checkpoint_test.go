package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/atpg"
	"repro/internal/failpoint"
	"repro/internal/netlist"
	"repro/internal/service"
)

// checkpointedATPGRequest is a deterministic ATPG job with the random
// phase off, so every collapsed fault is a decided-fault boundary the
// Every=1 cadence checkpoints at.
func checkpointedATPGRequest(t *testing.T) service.Request {
	t.Helper()
	off := false
	return service.Request{
		Kind:  service.KindATPG,
		Bench: benchCircuit(t, 60, 6),
		ATPG: &service.ATPGSpec{
			RandomPhase: &off, MaxFrames: 4, MaxBacktracks: 30, MaxEvalsPerFault: 20_000,
		},
	}
}

// TestRetryResumesFromCheckpoint crashes a journaled server mid-job --
// the terminal commit is dropped and the checkpoint cleanup skipped, as
// when the process dies between checkpoint writes -- and verifies the
// restarted server's retry resumes from the partial checkpoint and
// serves the byte-identical result over HTTP.
func TestRetryResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")

	// Fail every checkpoint write after the second, freezing the durable
	// file at a genuinely partial decision log; drop the terminal journal
	// commit and the file cleanup, the two things a real crash never
	// reaches.
	var writes atomic.Int64
	failpoint.Enable(atpg.FailpointCheckpointBeforeWrite, func() error {
		if writes.Add(1) > 2 {
			return errors.New("chaos: disk gone")
		}
		return nil
	})
	for _, ev := range []string{"done", "failed", "cancelled"} {
		failpoint.Enable("journal.before-write."+ev, failpoint.Errorf("chaos: crash before %s commit", ev))
	}
	failpoint.Enable("service.checkpoint.before-remove", failpoint.Errorf("chaos: crash before cleanup"))
	defer failpoint.DisableAll()

	svc1, err := service.Open(service.Config{
		Workers: 1, JournalPath: path, CheckpointEvery: 1, DefaultTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(newHandler(svc1, nil))
	id := postJob(t, srv1, checkpointedATPGRequest(t))
	v1 := pollJob(t, srv1, id)
	if v1.Status != service.StatusDone {
		t.Fatalf("first life: %s %q", v1.Status, v1.Error)
	}
	srv1.Close()
	svc1.Close() // the "crash": result computed, never committed
	failpoint.DisableAll()

	ckpt := filepath.Join(dir, id+".ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("crash left no checkpoint to resume from: %v", err)
	}

	// Second life: recovery re-queues the job; its retry must resume
	// from the partial checkpoint and converge on the same result.
	svc2, err := service.Open(service.Config{
		Workers: 1, JournalPath: path, CheckpointEvery: 1, DefaultTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(newHandler(svc2, nil))
	t.Cleanup(func() {
		srv2.Close()
		svc2.Close()
	})
	v2 := pollJob(t, srv2, id)
	if v2.Status != service.StatusDone {
		t.Fatalf("second life: %s %q", v2.Status, v2.Error)
	}
	if got := svc2.Metrics().Counter("atpg.checkpoint.resumed").Value(); got != 1 {
		t.Fatalf("atpg.checkpoint.resumed = %d, want 1", got)
	}
	if got := svc2.Metrics().Counter("atpg.checkpoint.discarded").Value(); got != 0 {
		t.Fatalf("atpg.checkpoint.discarded = %d; the partial checkpoint was valid", got)
	}
	a, _ := json.Marshal(v1.Result)
	b, _ := json.Marshal(v2.Result)
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed result diverged from the lost run:\n %s\n %s", a, b)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatal("completed retry left its checkpoint behind")
	}
}

// TestCancelRacesCheckpointWrite parks an ATPG job inside a checkpoint
// write, cancels it over HTTP while parked, and verifies the job
// retires cleanly -- no deadlock, no checkpoint residue, service still
// serving.
func TestCancelRacesCheckpointWrite(t *testing.T) {
	dir := t.TempDir()
	ready := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	failpoint.Enable(atpg.FailpointCheckpointBeforeWrite, func() error {
		once.Do(func() { close(ready) })
		<-release
		return nil
	})
	defer failpoint.DisableAll()

	svc, err := service.Open(service.Config{
		Workers: 1, JournalPath: filepath.Join(dir, "jobs.journal"),
		CheckpointEvery: 1, DefaultTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(svc, nil))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	id := postJob(t, srv, checkpointedATPGRequest(t))
	<-ready // the worker is now blocked mid-checkpoint-write

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel while checkpointing: status %d", resp.StatusCode)
	}
	close(release)

	if got := pollJob(t, srv, id); got.Status != service.StatusCancelled {
		t.Fatalf("job ended %s: %s", got.Status, got.Error)
	}
	for _, p := range []string{
		filepath.Join(dir, id+".ckpt"),
		filepath.Join(dir, id+".ckpt.tmp"),
	} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("cancelled job left %s behind", p)
		}
	}

	// The service is intact: a fresh job still runs to completion.
	next := postJob(t, srv, service.Request{
		Kind:  service.KindRetime,
		Bench: netlist.BenchString(netlist.Fig2C1()),
	})
	if v := pollJob(t, srv, next); v.Status != service.StatusDone {
		t.Fatalf("post-race job: %s %q", v.Status, v.Error)
	}
}
