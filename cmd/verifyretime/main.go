// Command verifyretime checks that one bench-format circuit is a
// behaviourally valid retiming of another: exact state-transition-graph
// equivalence for small machines, bounded 3-valued co-simulation with a
// counterexample report beyond that.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/verify"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses the arguments and dispatches; exit code 2 marks a
// usage error (unknown flag, wrong operand count), 1 a runtime failure.
// run itself exits 3 when the circuits are not equivalent.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("verifyretime", flag.ContinueOnError)
	fs.SetOutput(stderr)
	lag := fs.Int("lag", 8, "maximum atomic-move count of the retiming (warm-up bound)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: verifyretime [-lag n] original.bench retimed.bench\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if err := run(fs.Arg(0), fs.Arg(1), *lag); err != nil {
		fmt.Fprintln(stderr, "verifyretime:", err)
		return 1
	}
	return 0
}

func run(origPath, retPath string, lag int) error {
	load := func(path string) (*netlist.Circuit, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(path, f)
	}
	orig, err := load(origPath)
	if err != nil {
		return err
	}
	ret, err := load(retPath)
	if err != nil {
		return err
	}
	res, err := verify.Retiming(orig, ret, lag)
	if err != nil {
		return err
	}
	if res.Equivalent {
		fmt.Printf("EQUIVALENT (%s", res.Method)
		if res.Method == "exact" {
			fmt.Printf(", N-time-equivalent with N = %d", res.N)
		}
		fmt.Println(")")
		return nil
	}
	fmt.Printf("NOT EQUIVALENT (%s)\n", res.Method)
	if res.Counterexample != nil {
		fmt.Printf("counterexample (outputs diverge at cycle %d):\n", res.FailCycle)
		fmt.Println(sim.SeqString(res.Counterexample))
	}
	os.Exit(3)
	return nil
}
