// Command verifyretime checks that one bench-format circuit is a
// behaviourally valid retiming of another: exact state-transition-graph
// equivalence for small machines, bounded 3-valued co-simulation with a
// counterexample report beyond that.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/verify"
)

func main() {
	lag := flag.Int("lag", 8, "maximum atomic-move count of the retiming (warm-up bound)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: verifyretime [-lag n] original.bench retimed.bench\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *lag); err != nil {
		fmt.Fprintln(os.Stderr, "verifyretime:", err)
		os.Exit(1)
	}
}

func run(origPath, retPath string, lag int) error {
	load := func(path string) (*netlist.Circuit, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(path, f)
	}
	orig, err := load(origPath)
	if err != nil {
		return err
	}
	ret, err := load(retPath)
	if err != nil {
		return err
	}
	res, err := verify.Retiming(orig, ret, lag)
	if err != nil {
		return err
	}
	if res.Equivalent {
		fmt.Printf("EQUIVALENT (%s", res.Method)
		if res.Method == "exact" {
			fmt.Printf(", N-time-equivalent with N = %d", res.N)
		}
		fmt.Println(")")
		return nil
	}
	fmt.Printf("NOT EQUIVALENT (%s)\n", res.Method)
	if res.Counterexample != nil {
		fmt.Printf("counterexample (outputs diverge at cycle %d):\n", res.FailCycle)
		fmt.Println(sim.SeqString(res.Counterexample))
	}
	os.Exit(3)
	return nil
}
