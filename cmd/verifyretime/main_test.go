package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netlist"
)

func write(t *testing.T, c *netlist.Circuit) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), c.Name+".bench")
	if err := os.WriteFile(path, []byte(netlist.BenchString(c)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEquivalentPair(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()
	if err := run(write(t, netlist.Fig2C1()), write(t, netlist.Fig2C2()), 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFiles(t *testing.T) {
	if err := run("nope.bench", "alsono.bench", 2); err == nil {
		t.Fatal("missing files accepted")
	}
}
