// Command retimer retimes a bench-format circuit: -mode=period finds a
// minimum-clock-period retiming (the paper's performance direction),
// -mode=registers minimizes the flip-flop count (the testability
// direction of Fig. 6). The retimed circuit is written in bench format;
// a summary including the prefix lengths of Theorems 2 and 4 goes to
// stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/netlist"
	"repro/internal/retime"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses the arguments and dispatches; exit code 2 marks a
// usage error (unknown flag, bad mode, wrong operand count), 1 a
// runtime failure.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("retimer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "period", "objective: period | registers")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: retimer [-mode period|registers] [-o out.bench] in.bench\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	if *mode != "period" && *mode != "registers" {
		fmt.Fprintf(stderr, "retimer: unknown mode %q\n", *mode)
		fs.Usage()
		return 2
	}
	if err := run(fs.Arg(0), *mode, *out); err != nil {
		fmt.Fprintln(stderr, "retimer:", err)
		return 1
	}
	return 0
}

func run(path, mode, out string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	c, err := netlist.ParseBench(path, f)
	f.Close()
	if err != nil {
		return err
	}
	g := retime.FromCircuit(c)
	var r retime.Retiming
	switch mode {
	case "period":
		var period int
		r, period, err = g.MinPeriod()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "clock period: %d -> %d\n", g.Period(), period)
	case "registers":
		r = g.ReduceRegisters(g.Zero(), math.MaxInt)
		fmt.Fprintf(os.Stderr, "registers: %d -> %d\n", g.Registers(), g.RegistersAfter(r))
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	moves := g.AnalyzeMoves(r)
	fmt.Fprintf(os.Stderr, "max forward moves (test prefix, Thm 4): %d\n", moves.MaxForward)
	fmt.Fprintf(os.Stderr, "max forward stem moves (sync prefix, Thm 2): %d\n", moves.MaxForwardStem)
	fmt.Fprintf(os.Stderr, "max backward moves: %d\n", moves.MaxBackward)

	rg, err := g.Retime(r)
	if err != nil {
		return err
	}
	ret, _, err := rg.Materialize(c.Name + ".re")
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	return netlist.WriteBench(w, ret)
}
