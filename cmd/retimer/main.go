// Command retimer retimes a bench-format circuit: -mode=period finds a
// minimum-clock-period retiming (the paper's performance direction),
// -mode=registers minimizes the flip-flop count (the testability
// direction of Fig. 6). The retimed circuit is written in bench format;
// a summary including the prefix lengths of Theorems 2 and 4 goes to
// stderr.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/netlist"
	"repro/internal/retime"
)

func main() {
	mode := flag.String("mode", "period", "objective: period | registers")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: retimer [-mode period|registers] [-o out.bench] in.bench\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *mode, *out); err != nil {
		fmt.Fprintln(os.Stderr, "retimer:", err)
		os.Exit(1)
	}
}

func run(path, mode, out string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	c, err := netlist.ParseBench(path, f)
	f.Close()
	if err != nil {
		return err
	}
	g := retime.FromCircuit(c)
	var r retime.Retiming
	switch mode {
	case "period":
		var period int
		r, period, err = g.MinPeriod()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "clock period: %d -> %d\n", g.Period(), period)
	case "registers":
		r = g.ReduceRegisters(g.Zero(), math.MaxInt)
		fmt.Fprintf(os.Stderr, "registers: %d -> %d\n", g.Registers(), g.RegistersAfter(r))
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	moves := g.AnalyzeMoves(r)
	fmt.Fprintf(os.Stderr, "max forward moves (test prefix, Thm 4): %d\n", moves.MaxForward)
	fmt.Fprintf(os.Stderr, "max forward stem moves (sync prefix, Thm 2): %d\n", moves.MaxForwardStem)
	fmt.Fprintf(os.Stderr, "max backward moves: %d\n", moves.MaxBackward)

	rg, err := g.Retime(r)
	if err != nil {
		return err
	}
	ret, _, err := rg.Materialize(c.Name + ".re")
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	return netlist.WriteBench(w, ret)
}
