package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netlist"
)

func writeToy(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.bench")
	if err := os.WriteFile(path, []byte(netlist.BenchString(netlist.Fig2C1())), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPeriodMode(t *testing.T) {
	in := writeToy(t)
	out := filepath.Join(t.TempDir(), "out.bench")
	if err := run(in, "period", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	c, err := netlist.ParseBenchString("out", string(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MaxCombDelay(); got != 3 {
		t.Fatalf("retimed period = %d, want 3", got)
	}
}

func TestRunRegistersMode(t *testing.T) {
	in := writeToy(t)
	out := filepath.Join(t.TempDir(), "out.bench")
	if err := run(in, "registers", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netlist.ParseBenchString("out", string(data)); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	in := writeToy(t)
	if err := run(in, "frobnicate", ""); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.bench"), "period", ""); err == nil {
		t.Fatal("missing file accepted")
	}
}
