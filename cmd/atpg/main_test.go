package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netlist"
)

// silence redirects stdout to a pipe drained in the background so run()
// output does not pollute test logs.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunGeneratesTests(t *testing.T) {
	silence(t)
	path := filepath.Join(t.TempDir(), "c1.bench")
	if err := os.WriteFile(path, []byte(netlist.BenchString(netlist.Fig2C1())), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 6, 50, 100_000, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.bench"), 6, 50, 0, false, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}
