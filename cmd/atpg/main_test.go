package main

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/netlist"
)

func writeBench(t *testing.T, c *netlist.Circuit) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), c.Name+".bench")
	if err := os.WriteFile(path, []byte(netlist.BenchString(c)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func defaultConfig() runConfig {
	return runConfig{frames: 6, backtracks: 50, budget: 100_000, random: true, workers: 1}
}

func TestRunGeneratesTests(t *testing.T) {
	path := writeBench(t, netlist.Fig2C1())
	var out, errw bytes.Buffer
	if err := run(path, defaultConfig(), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no test vectors written")
	}
	if !strings.Contains(errw.String(), "fault coverage") {
		t.Fatalf("missing coverage report:\n%s", errw.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.bench"), defaultConfig(), io.Discard, io.Discard); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestRunParallelMatchesSerial runs the CLI path at several worker
// counts and requires identical emitted test sets.
func TestRunParallelMatchesSerial(t *testing.T) {
	path := writeBench(t, netlist.Fig2C1())
	var want bytes.Buffer
	if err := run(path, defaultConfig(), &want, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		cfg := defaultConfig()
		cfg.workers = workers
		var out, errw bytes.Buffer
		if err := run(path, cfg, &out, &errw); err != nil {
			t.Fatal(err)
		}
		if out.String() != want.String() {
			t.Fatalf("workers=%d: test set differs from serial", workers)
		}
		if !strings.Contains(errw.String(), "parallel:") {
			t.Fatalf("workers=%d: no parallel stats line:\n%s", workers, errw.String())
		}
	}
}

// TestRunCheckpointResume runs with a checkpoint, then resumes from the
// completed decision log: the CLI must note the resume and emit the
// byte-identical test set.
func TestRunCheckpointResume(t *testing.T) {
	path := writeBench(t, netlist.Fig5N1())
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := defaultConfig()
	cfg.random = false // every fault is a decided (checkpointed) boundary
	cfg.checkpoint = ckpt
	cfg.every = 1

	var want bytes.Buffer
	if err := run(path, cfg, &want, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	cfg.resume = true
	var out, errw bytes.Buffer
	if err := run(path, cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "resuming from") {
		t.Fatalf("no resume note:\n%s", errw.String())
	}
	if out.String() != want.String() {
		t.Fatal("resumed run emitted a different test set")
	}
}

// TestRunResumeDiscardsGarbage: -resume over a rotten checkpoint file
// notes the discard and still completes with the clean-run output.
func TestRunResumeDiscardsGarbage(t *testing.T) {
	path := writeBench(t, netlist.Fig5N1())
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(ckpt, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig()
	cfg.random = false
	var want bytes.Buffer
	if err := run(path, cfg, &want, io.Discard); err != nil {
		t.Fatal(err)
	}

	cfg.checkpoint = ckpt
	cfg.every = 1
	cfg.resume = true
	var out, errw bytes.Buffer
	if err := run(path, cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "ignoring unusable checkpoint") {
		t.Fatalf("no discard note:\n%s", errw.String())
	}
	if out.String() != want.String() {
		t.Fatal("post-discard run emitted a different test set")
	}
}

// TestResumeRequiresCheckpointFlag: -resume without -checkpoint is a
// usage error, not a silent no-op.
func TestResumeRequiresCheckpointFlag(t *testing.T) {
	var errw bytes.Buffer
	if code := cliMain([]string{"-resume", "in.bench"}, &errw); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "-resume requires -checkpoint") {
		t.Fatalf("missing usage message:\n%s", errw.String())
	}
}

// TestRunInterruptedReportsPrefixCoverage cuts a parallel run off with
// a tiny -timeout and checks the prefix-coverage line of the
// partial-results contract appears.
func TestRunInterruptedReportsPrefixCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := netlist.Random(rng, netlist.RandomParams{
		Inputs: 8, Outputs: 8, Gates: 500, DFFs: 24, MaxFanin: 4,
	})
	path := writeBench(t, c)
	cfg := defaultConfig()
	cfg.workers = 4
	cfg.backtracks = 200
	cfg.timeout = 30 * time.Millisecond
	var out, errw bytes.Buffer
	if err := run(path, cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	msg := errw.String()
	if !strings.Contains(msg, "interrupted") {
		t.Skip("run finished before the timeout fired; nothing to assert")
	}
	if !strings.Contains(msg, "prefix fault coverage") && !strings.Contains(msg, "no faults processed") {
		t.Fatalf("interrupted run missing prefix coverage report:\n%s", msg)
	}
}

// TestRunCacheDir runs the CLI twice against one cache directory: the
// cold run generates and stores, the warm run is served from the cache
// with a byte-identical test set on stdout.
func TestRunCacheDir(t *testing.T) {
	path := writeBench(t, netlist.Fig2C1())
	cfg := defaultConfig()
	cfg.cacheDir = filepath.Join(t.TempDir(), "cache")

	var cold, coldErr bytes.Buffer
	if err := run(path, cfg, &cold, &coldErr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(coldErr.String(), "served from cache") {
		t.Fatalf("cold run claimed a cache hit:\n%s", coldErr.String())
	}
	var warm, warmErr bytes.Buffer
	if err := run(path, cfg, &warm, &warmErr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warmErr.String(), "served from cache") {
		t.Fatalf("warm run did not report the cache hit:\n%s", warmErr.String())
	}
	if warm.String() != cold.String() {
		t.Fatal("cached test set differs from the cold run")
	}

	// Different options = different key: no false hit.
	cfg2 := cfg
	cfg2.backtracks = cfg.backtracks + 1
	var other, otherErr bytes.Buffer
	if err := run(path, cfg2, &other, &otherErr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(otherErr.String(), "served from cache") {
		t.Fatalf("changed options still hit the cache:\n%s", otherErr.String())
	}
}
