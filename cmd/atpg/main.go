// Command atpg runs the sequential structural test generator on a
// bench-format circuit and writes the generated test set (one vector
// per line) to stdout; coverage and effort statistics go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses the arguments and dispatches; exit code 2 marks a
// usage error (unknown flag, wrong operand count), 1 a runtime failure.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("atpg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	frames := fs.Int("frames", 10, "maximum time frames")
	backtracks := fs.Int("backtracks", 200, "PODEM backtrack limit per fault")
	budget := fs.Int64("budget", 2_000_000, "gate-evaluation budget per fault (0 = unlimited)")
	random := fs.Bool("random", true, "run the random-sequence pre-phase")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = unlimited); partial results are still reported")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: atpg [flags] in.bench\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	if err := run(fs.Arg(0), *frames, *backtracks, *budget, *random, *timeout); err != nil {
		fmt.Fprintln(stderr, "atpg:", err)
		return 1
	}
	return 0
}

func run(path string, frames, backtracks int, budget int64, random bool, timeout time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	c, err := netlist.ParseBench(path, f)
	f.Close()
	if err != nil {
		return err
	}
	reps, _ := fault.Collapse(c)
	opt := atpg.DefaultOptions()
	opt.MaxFrames = frames
	opt.MaxBacktracks = backtracks
	opt.MaxEvalsPerFault = budget
	opt.RandomPhase = random

	// Ctrl-C (or the -timeout deadline) interrupts the generator at its
	// next cooperative check; the tests found so far are still written,
	// with a note that the run was cut short.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, ctxErr := atpg.RunContext(ctx, c, reps, opt)
	if ctxErr != nil {
		fmt.Fprintf(os.Stderr, "atpg: interrupted (%v); reporting partial results\n", ctxErr)
	}

	det, red, ab := res.Counts()
	fmt.Fprintf(os.Stderr, "%s: %d collapsed faults\n", c.Name, len(reps))
	fmt.Fprintf(os.Stderr, "detected %d, redundant %d, aborted %d\n", det, red, ab)
	fmt.Fprintf(os.Stderr, "fault coverage %.2f%%, fault efficiency %.2f%%\n",
		res.FaultCoverage(), res.FaultEfficiency())
	fmt.Fprintf(os.Stderr, "effort: %d gate evaluations, %d backtracks, %v\n",
		res.Effort.Evals, res.Effort.Backtracks, res.Effort.Time)
	fmt.Fprintf(os.Stderr, "test set: %d vectors in %d sequences\n", len(res.TestSet), len(res.Tests))
	for _, v := range res.TestSet {
		fmt.Println(sim.VecString(v))
	}
	return nil
}
