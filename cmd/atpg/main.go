// Command atpg runs the sequential structural test generator on a
// bench-format circuit and writes the generated test set (one vector
// per line) to stdout; coverage and effort statistics go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func main() {
	frames := flag.Int("frames", 10, "maximum time frames")
	backtracks := flag.Int("backtracks", 200, "PODEM backtrack limit per fault")
	budget := flag.Int64("budget", 2_000_000, "gate-evaluation budget per fault (0 = unlimited)")
	random := flag.Bool("random", true, "run the random-sequence pre-phase")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: atpg [flags] in.bench\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *frames, *backtracks, *budget, *random); err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(1)
	}
}

func run(path string, frames, backtracks int, budget int64, random bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	c, err := netlist.ParseBench(path, f)
	f.Close()
	if err != nil {
		return err
	}
	reps, _ := fault.Collapse(c)
	opt := atpg.DefaultOptions()
	opt.MaxFrames = frames
	opt.MaxBacktracks = backtracks
	opt.MaxEvalsPerFault = budget
	opt.RandomPhase = random
	res := atpg.Run(c, reps, opt)

	det, red, ab := res.Counts()
	fmt.Fprintf(os.Stderr, "%s: %d collapsed faults\n", c.Name, len(reps))
	fmt.Fprintf(os.Stderr, "detected %d, redundant %d, aborted %d\n", det, red, ab)
	fmt.Fprintf(os.Stderr, "fault coverage %.2f%%, fault efficiency %.2f%%\n",
		res.FaultCoverage(), res.FaultEfficiency())
	fmt.Fprintf(os.Stderr, "effort: %d gate evaluations, %d backtracks, %v\n",
		res.Effort.Evals, res.Effort.Backtracks, res.Effort.Time)
	fmt.Fprintf(os.Stderr, "test set: %d vectors in %d sequences\n", len(res.TestSet), len(res.Tests))
	for _, v := range res.TestSet {
		fmt.Println(sim.VecString(v))
	}
	return nil
}
