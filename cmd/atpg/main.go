// Command atpg runs the sequential structural test generator on a
// bench-format circuit and writes the generated test set (one vector
// per line) to stdout; coverage and effort statistics go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/resultcache"
	"repro/internal/sim"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// runConfig carries the parsed flags into run.
type runConfig struct {
	frames     int
	backtracks int
	budget     int64
	random     bool
	workers    int
	timeout    time.Duration
	checkpoint string
	every      int
	resume     bool
	cacheDir   string
}

// cliMain parses the arguments and dispatches; exit code 2 marks a
// usage error (unknown flag, wrong operand count), 1 a runtime failure.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("atpg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg runConfig
	fs.IntVar(&cfg.frames, "frames", 10, "maximum time frames")
	fs.IntVar(&cfg.backtracks, "backtracks", 200, "PODEM backtrack limit per fault")
	fs.Int64Var(&cfg.budget, "budget", 2_000_000, "gate-evaluation budget per fault (0 = unlimited)")
	fs.BoolVar(&cfg.random, "random", true, "run the random-sequence pre-phase")
	fs.IntVar(&cfg.workers, "workers", 1, "fault-shard workers for the deterministic phase (output is identical at any count)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "wall-clock budget (0 = unlimited); partial results are still reported")
	fs.StringVar(&cfg.checkpoint, "checkpoint", "", "durable checkpoint file; written atomically as faults are decided")
	fs.IntVar(&cfg.every, "checkpoint-every", atpg.DefaultCheckpointEvery, "checkpoint cadence in decided faults")
	fs.BoolVar(&cfg.resume, "resume", false, "resume from -checkpoint if it holds a usable prior run")
	fs.StringVar(&cfg.cacheDir, "cache-dir", "", "content-addressed result cache directory; an identical prior run is served from it without generating")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: atpg [flags] in.bench\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	if cfg.resume && cfg.checkpoint == "" {
		fmt.Fprintln(stderr, "atpg: -resume requires -checkpoint")
		fs.Usage()
		return 2
	}
	if err := run(fs.Arg(0), cfg, os.Stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "atpg:", err)
		return 1
	}
	return 0
}

func run(path string, cfg runConfig, stdout, stderr io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	c, err := netlist.ParseBench(path, f)
	f.Close()
	if err != nil {
		return err
	}
	reps, _ := fault.Collapse(c)
	opt := atpg.DefaultOptions()
	opt.MaxFrames = cfg.frames
	opt.MaxBacktracks = cfg.backtracks
	opt.MaxEvalsPerFault = cfg.budget
	opt.RandomPhase = cfg.random
	opt.Workers = cfg.workers
	if cfg.checkpoint != "" {
		opt.Checkpoint.Path = cfg.checkpoint
		opt.Checkpoint.Every = cfg.every
	}
	if cfg.resume {
		// A usable checkpoint seeds the run with the prior decisions; an
		// unusable one (corrupt, version skew, different circuit or
		// options) is discarded with a note and the run starts clean.
		if resumed, discarded := atpg.TryResume(&opt, c, reps); resumed {
			fmt.Fprintf(stderr, "atpg: resuming from %s (%d of %d faults already decided)\n",
				cfg.checkpoint, len(opt.Checkpoint.ResumeFrom.Decided), len(reps))
		} else if discarded != nil {
			fmt.Fprintf(stderr, "atpg: ignoring unusable checkpoint %s: %v\n", cfg.checkpoint, discarded)
		}
	}

	// Ctrl-C (or the -timeout deadline) interrupts the generator at its
	// next cooperative check; the tests found so far are still written,
	// with a note that the run was cut short.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	// With a cache directory, an identical earlier run (same circuit,
	// fault list and result-affecting options) is decoded from its entry
	// instead of regenerated; misses run normally and store their result
	// on success. Cancellation still reports partial results -- CachedRun
	// deliberately takes no single-flight slot for exactly that reason.
	var cache *resultcache.Cache
	if cfg.cacheDir != "" {
		cache = resultcache.New(resultcache.Config{Dir: cfg.cacheDir})
		cache.Sweep() // collect torn residue before consulting the store
	}
	res, src, ctxErr := atpg.CachedRun(ctx, cache, c, reps, opt)
	if src != resultcache.SourceNone {
		fmt.Fprintf(stderr, "atpg: result served from cache (%s); effort counters are the original run's, time is not re-spent\n", src)
	}
	if ctxErr != nil {
		fmt.Fprintf(stderr, "atpg: interrupted (%v); reporting partial results\n", ctxErr)
		reportPrefix(stderr, res, len(reps))
		if cfg.checkpoint != "" {
			if _, statErr := os.Stat(cfg.checkpoint); statErr == nil {
				fmt.Fprintf(stderr, "atpg: checkpoint written to %s; rerun with -resume to continue\n", cfg.checkpoint)
			}
		}
	}

	det, red, ab := res.Counts()
	fmt.Fprintf(stderr, "%s: %d collapsed faults\n", c.Name, len(reps))
	fmt.Fprintf(stderr, "detected %d, redundant %d, aborted %d\n", det, red, ab)
	fmt.Fprintf(stderr, "fault coverage %.2f%%, fault efficiency %.2f%%\n",
		res.FaultCoverage(), res.FaultEfficiency())
	fmt.Fprintf(stderr, "effort: %d gate evaluations, %d backtracks, %v\n",
		res.Effort.Evals, res.Effort.Backtracks, res.Effort.Time)
	if ps := res.Parallel; ps != nil {
		fmt.Fprintf(stderr, "parallel: %d workers, %d speculated (%d used, %d wasted), %d fortuitous skips\n",
			ps.Workers, ps.Speculated, ps.Used, ps.Wasted, ps.Fortuitous)
	}
	fmt.Fprintf(stderr, "test set: %d vectors in %d sequences\n", len(res.TestSet), len(res.Tests))
	for _, v := range res.TestSet {
		fmt.Fprintln(stdout, sim.VecString(v))
	}
	return nil
}

// reportPrefix prints the coverage of the fault prefix an interrupted
// run actually processed. The overall coverage line below counts every
// undecided fault as aborted, which understates a run that was cut off
// mid-shard; this line scores only the faults the generator reached.
func reportPrefix(stderr io.Writer, res *atpg.Result, total int) {
	processed := len(res.Status)
	if processed == 0 {
		fmt.Fprintf(stderr, "atpg: no faults processed before interruption\n")
		return
	}
	det := 0
	for _, st := range res.Status {
		if st == atpg.StatusDetected {
			det++
		}
	}
	fmt.Fprintf(stderr, "atpg: processed %d/%d faults before interruption; prefix fault coverage %.2f%%\n",
		processed, total, 100*float64(det)/float64(processed))
}
