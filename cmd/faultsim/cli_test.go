package main

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestCLIMainErrorPaths(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.bench")
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"no operands", nil, 2},
		{"too many operands", []string{"a.bench", "b.bench"}, 2},
		{"repeat zero", []string{"-repeat", "0", "a.bench"}, 2},
		{"repeat negative", []string{"-repeat", "-3", "a.bench"}, 2},
		{"missing input file", []string{missing}, 1},
		{"missing tests file", []string{"-tests", missing, missing}, 1},
	}
	for _, c := range cases {
		var errw bytes.Buffer
		if got := cliMain(c.args, &errw); got != c.code {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", c.name, got, c.code, errw.String())
		}
		if errw.Len() == 0 {
			t.Errorf("%s: nothing on stderr", c.name)
		}
	}
}
