package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netlist"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunFaultSim(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	bench := filepath.Join(dir, "c1.bench")
	if err := os.WriteFile(bench, []byte(netlist.BenchString(netlist.Fig2C1())), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(tests, []byte("# two vectors\n11\n00\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bench, tests, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsWidthMismatch(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	bench := filepath.Join(dir, "c1.bench")
	if err := os.WriteFile(bench, []byte(netlist.BenchString(netlist.Fig2C1())), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(tests, []byte("101\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bench, tests, false, 0); err == nil {
		t.Fatal("width mismatch accepted")
	}
}
