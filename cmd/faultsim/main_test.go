package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func writeInputs(t *testing.T, vectors string) (bench, tests string) {
	t.Helper()
	dir := t.TempDir()
	bench = filepath.Join(dir, "c1.bench")
	if err := os.WriteFile(bench, []byte(netlist.BenchString(netlist.Fig2C1())), 0o644); err != nil {
		t.Fatal(err)
	}
	tests = filepath.Join(dir, "t.txt")
	if err := os.WriteFile(tests, []byte(vectors), 0o644); err != nil {
		t.Fatal(err)
	}
	return bench, tests
}

// TestRunFaultSim drives the CLI path to completion and through an
// interruption: both must flush the coverage report (full or prefix),
// and only the interrupted run notes how many vectors it processed.
func TestRunFaultSim(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name        string
		ctx         context.Context
		interrupted bool
	}{
		{"completes", context.Background(), false},
		{"interrupted", cancelled, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bench, tests := writeInputs(t, "# two vectors\n11\n00\n")
			var out, errw bytes.Buffer
			if err := run(c.ctx, bench, tests, true, 1, &out, &errw); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "coverage") {
				t.Fatalf("no coverage report flushed:\n%s", out.String())
			}
			if got := strings.Contains(errw.String(), "interrupted"); got != c.interrupted {
				t.Fatalf("interrupted note = %v, want %v:\n%s", got, c.interrupted, errw.String())
			}
			if c.interrupted && !strings.Contains(errw.String(), "processed 0/2 vectors") {
				t.Fatalf("interrupted run missing prefix note:\n%s", errw.String())
			}
			if !c.interrupted && !strings.Contains(out.String(), "2 vectors") {
				t.Fatalf("completed run missing vector count:\n%s", out.String())
			}
		})
	}
}

func TestRunRejectsWidthMismatch(t *testing.T) {
	bench, tests := writeInputs(t, "101\n")
	if err := run(context.Background(), bench, tests, false, 1, io.Discard, io.Discard); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

// TestRunRepeat checks the soak mode: -repeat n applies the test set n
// times through one rearmed Simulator, reports the per-application
// timing line, and lands on the same coverage as a single application
// (rearming resets detection state, so coverage must not accumulate
// differently).
func TestRunRepeat(t *testing.T) {
	bench, tests := writeInputs(t, "11\n00\n10\n01\n")
	var once, thrice bytes.Buffer
	if err := run(context.Background(), bench, tests, false, 1, &once, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), bench, tests, false, 3, &thrice, io.Discard); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(once.String(), "repeat:") {
		t.Fatalf("-repeat 1 printed the repeat summary:\n%s", once.String())
	}
	if !strings.Contains(thrice.String(), "repeat: 3/3 applications through one simulator") {
		t.Fatalf("-repeat 3 missing repeat summary:\n%s", thrice.String())
	}
	covLine := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "coverage") {
				return line
			}
		}
		return ""
	}
	if got, want := covLine(thrice.String()), covLine(once.String()); got != want || got == "" {
		t.Fatalf("repeat coverage %q, single-run coverage %q", got, want)
	}
}
