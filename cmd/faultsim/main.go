// Command faultsim fault-simulates a test set (one vector per line,
// characters 0/1/x, as written by cmd/atpg) on a bench-format circuit
// and reports coverage and the undetected faults.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func main() {
	tests := flag.String("tests", "", "test set file (default: stdin)")
	list := flag.Bool("undetected", false, "list undetected faults")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: faultsim [-tests vectors.txt] [-undetected] in.bench\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *tests, *list); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(path, testsPath string, listUndet bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	c, err := netlist.ParseBench(path, f)
	f.Close()
	if err != nil {
		return err
	}

	in := os.Stdin
	if testsPath != "" {
		in, err = os.Open(testsPath)
		if err != nil {
			return err
		}
		defer in.Close()
	}
	var seq sim.Seq
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v := sim.ParseVec(line)
		if len(v) != len(c.Inputs) {
			return fmt.Errorf("vector %q has %d bits, circuit has %d inputs", line, len(v), len(c.Inputs))
		}
		seq = append(seq, v)
	}
	if err := sc.Err(); err != nil {
		return err
	}

	reps, _ := fault.Collapse(c)
	res := fsim.Run(c, reps, seq)
	fmt.Printf("%s: %d collapsed faults, %d vectors\n", c.Name, len(reps), len(seq))
	fmt.Printf("detected %d, undetected %d, coverage %.2f%%\n",
		res.Detected(), len(reps)-res.Detected(), res.Coverage())
	if listUndet {
		for _, u := range res.Undetected() {
			fmt.Printf("undetected: %s\n", u.Name(c))
		}
	}
	return nil
}
