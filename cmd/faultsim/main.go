// Command faultsim fault-simulates a test set (one vector per line,
// characters 0/1/x, as written by cmd/atpg) on a bench-format circuit
// and reports coverage and the undetected faults.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses the arguments and dispatches; exit code 2 marks a
// usage error (unknown flag, wrong operand count), 1 a runtime failure.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.String("tests", "", "test set file (default: stdin)")
	list := fs.Bool("undetected", false, "list undetected faults")
	repeat := fs.Int("repeat", 1, "apply the test set n times through one reused simulator (soak/profiling mode)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = unlimited); partial coverage is still reported")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: faultsim [-tests vectors.txt] [-undetected] [-repeat n] in.bench\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	if *repeat < 1 {
		fmt.Fprintln(stderr, "faultsim: -repeat must be >= 1")
		fs.Usage()
		return 2
	}
	// Ctrl-C (or the -timeout deadline) stops simulation at the next
	// 128-cycle block boundary; coverage over the processed prefix is
	// still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, fs.Arg(0), *tests, *list, *repeat, os.Stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "faultsim:", err)
		return 1
	}
	return 0
}

func run(ctx context.Context, path, testsPath string, listUndet bool, repeat int, stdout, stderr io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	c, err := netlist.ParseBench(path, f)
	f.Close()
	if err != nil {
		return err
	}

	in := os.Stdin
	if testsPath != "" {
		in, err = os.Open(testsPath)
		if err != nil {
			return err
		}
		defer in.Close()
	}
	var seq sim.Seq
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v := sim.ParseVec(line)
		if len(v) != len(c.Inputs) {
			return fmt.Errorf("vector %q has %d bits, circuit has %d inputs", line, len(v), len(c.Inputs))
		}
		seq = append(seq, v)
	}
	if err := sc.Err(); err != nil {
		return err
	}

	reps, _ := fault.Collapse(c)
	// The incremental simulator tracks how many cycles it actually ran,
	// so an interrupted run can report the prefix it processed before
	// flushing the partial coverage report below. With -repeat the one
	// Simulator is rearmed between applications instead of being
	// rebuilt, so every repetition after the first runs out of warmed
	// arenas (the steady-state the alloc gate pins).
	s := fsim.NewSimulator(c, reps)
	var ctxErr error
	start := time.Now()
	done := 0
	for rep := 0; rep < repeat; rep++ {
		if rep > 0 {
			s.Rearm()
		}
		if _, ctxErr = s.SimulateContext(ctx, seq); ctxErr != nil {
			break
		}
		done++
	}
	elapsed := time.Since(start)
	if ctxErr != nil {
		fmt.Fprintf(stderr, "faultsim: interrupted (%v); processed %d/%d vectors; reporting prefix coverage\n",
			ctxErr, s.Cycles(), len(seq))
	}
	res := s.Result()
	fmt.Fprintf(stdout, "%s: %d collapsed faults, %d vectors\n", c.Name, len(reps), len(seq))
	if repeat > 1 {
		perRep := time.Duration(0)
		if done > 0 {
			perRep = elapsed / time.Duration(done)
		}
		fmt.Fprintf(stdout, "repeat: %d/%d applications through one simulator, %v total, %v per application\n",
			done, repeat, elapsed.Round(time.Microsecond), perRep.Round(time.Microsecond))
	}
	fmt.Fprintf(stdout, "detected %d, undetected %d, coverage %.2f%%\n",
		res.Detected(), len(reps)-res.Detected(), res.Coverage())
	if listUndet {
		for _, u := range res.Undetected() {
			fmt.Fprintf(stdout, "undetected: %s\n", u.Name(c))
		}
	}
	return nil
}
