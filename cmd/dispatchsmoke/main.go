// Command dispatchsmoke is the kill-a-worker smoke test for the
// distributed ATPG path, run from scripts/check.sh against real
// processes: it starts two workerd workers and one servd pointed at
// both, submits a distributed ATPG job, SIGKILLs one worker mid-run,
// and asserts the job still completes with a payload identical to an
// in-process serial atpg.Run of the same request. One worker is slowed
// through the failpoint environment (RETEST_FAILPOINTS with a sleep
// action on atpg.shard.fault) so the kill reliably lands while it
// still owns unfinished shard work.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dispatchsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("dispatchsmoke: ok")
}

// proc is one child server plus the address it printed at startup.
type proc struct {
	cmd  *exec.Cmd
	addr string
}

// start launches a server binary and scans its stdout for the
// "listening on <addr>" line every server in this repo prints.
func start(name string, env []string, args ...string) (*proc, error) {
	cmd := exec.Command(name, args...)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrc <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &proc{cmd: cmd, addr: addr}, nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("%s: no listening line within 10s", name)
	}
}

func (p *proc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

func run() error {
	servdBin := flag.String("servd", "", "path to a servd binary")
	workerdBin := flag.String("workerd", "", "path to a workerd binary")
	timeout := flag.Duration("timeout", 90*time.Second, "overall smoke budget")
	flag.Parse()
	if *servdBin == "" || *workerdBin == "" {
		return fmt.Errorf("both -servd and -workerd are required")
	}
	deadline := time.Now().Add(*timeout)

	// The job: a seeded random sequential circuit, default options.
	rng := rand.New(rand.NewSource(97))
	c := netlist.Random(rng, netlist.RandomParams{
		Inputs: 4, Outputs: 3, Gates: 40, DFFs: 4, MaxFanin: 4,
	})
	spec := &service.ATPGSpec{Backends: 4}
	req := service.Request{
		Kind:  service.KindATPG,
		Bench: netlist.BenchString(c),
		ATPG:  spec,
	}

	// The reference: the same request run serially in this process.
	faults, _ := fault.Collapse(c)
	want := atpg.Run(c, faults, spec.Options())

	// Worker A decides one shard fault per 25ms -- slow enough that the
	// SIGKILL below lands while it owns work, fast enough to make
	// progress worth migrating. Worker B runs at full speed.
	slow, err := start(*workerdBin,
		[]string{"RETEST_FAILPOINTS=atpg.shard.fault=sleep:25ms"},
		"-addr", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer slow.stop()
	fast, err := start(*workerdBin, nil, "-addr", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer fast.stop()

	srv, err := start(*servdBin, nil,
		"-addr", "127.0.0.1:0",
		"-cache-bytes", "-1",
		"-backend", "http://"+slow.addr,
		"-backend", "http://"+fast.addr,
	)
	if err != nil {
		return err
	}
	defer srv.stop()
	base := "http://" + srv.addr

	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var sub struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Printf("dispatchsmoke: job %s on servd %s (workers %s slow, %s)\n", sub.ID, srv.addr, slow.addr, fast.addr)

	// Give the dispatcher time to shard and land work on the slow
	// worker, then kill it dead -- no drain, no goodbye.
	time.Sleep(500 * time.Millisecond)
	if err := slow.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("kill slow worker: %w", err)
	}
	slow.cmd.Wait()
	fmt.Println("dispatchsmoke: killed the slow worker mid-run")

	// Poll to completion.
	var view struct {
		Status string          `json:"status"`
		Error  string          `json:"error"`
		Result *service.Result `json:"result"`
	}
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %q at the smoke deadline", sub.ID, view.Status)
		}
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &view); err != nil {
			return fmt.Errorf("job poll: %w (%.200s)", err, data)
		}
		if view.Status == "done" || view.Status == "failed" || view.Status == "cancelled" {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if view.Status != "done" {
		return fmt.Errorf("job %s ended %s: %s", sub.ID, view.Status, view.Error)
	}
	if view.Result == nil || view.Result.ATPG == nil {
		return fmt.Errorf("job %s: done without an ATPG payload", sub.ID)
	}

	// Byte-identity against the serial reference.
	got := view.Result.ATPG
	wdet, wred, wab := want.Counts()
	if got.Faults != len(faults) || got.Detected != wdet || got.Redundant != wred || got.Aborted != wab {
		return fmt.Errorf("counts diverged: got %d/%d/%d/%d, want %d/%d/%d/%d",
			got.Faults, got.Detected, got.Redundant, got.Aborted, len(faults), wdet, wred, wab)
	}
	if got.Evals != want.Effort.Evals {
		return fmt.Errorf("evals diverged: got %d, want %d", got.Evals, want.Effort.Evals)
	}
	wantVecs := make([]string, len(want.TestSet))
	for i, v := range want.TestSet {
		wantVecs[i] = sim.VecString(v)
	}
	if strings.Join(got.Vectors, "\n") != strings.Join(wantVecs, "\n") {
		return fmt.Errorf("test vectors diverged from the serial reference")
	}
	fmt.Printf("dispatchsmoke: merged result identical to serial reference (%d vectors, %d evals)\n",
		len(got.Vectors), got.Evals)

	// The fan-out must actually have happened.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var m map[string]json.RawMessage
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		return err
	}
	metric := func(name string) int64 {
		var v int64
		if raw, ok := m[name]; ok {
			json.Unmarshal(raw, &v)
		}
		return v
	}
	if s := metric("dispatch.shards"); s < 2 {
		return fmt.Errorf("dispatch.shards=%d, want >= 2", s)
	}
	// The kill usually shows up as retries/migrations, but the exact
	// trail depends on where the shard was when the worker died; report
	// rather than assert so the smoke cannot flake.
	fmt.Printf("dispatchsmoke: shards=%d retries=%d migrations=%d degraded=%d breaker_open=%d\n",
		metric("dispatch.shards"), metric("dispatch.retries"), metric("dispatch.migrations"),
		metric("dispatch.degraded"), metric("dispatch.breaker_open"))
	return nil
}
