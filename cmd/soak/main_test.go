package main

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/service"
)

// TestCLIMainErrorPaths pins the usage-error exit code.
func TestCLIMainErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"stray operand", []string{"extra"}},
		{"zero duration", []string{"-duration", "0s"}},
		{"negative duration", []string{"-duration", "-1s"}},
		{"zero submitters", []string{"-submitters", "0"}},
	}
	for _, c := range cases {
		var out, errw bytes.Buffer
		if got := cliMain(c.args, &out, &errw); got != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", c.name, got, errw.String())
		}
		if errw.Len() == 0 {
			t.Errorf("%s: nothing on stderr", c.name)
		}
	}
}

// TestBuildMixDeterministic checks two runs with one seed submit
// byte-identical work (so a soak regression reproduces), and that the
// mix covers every job kind with valid requests.
func TestBuildMixDeterministic(t *testing.T) {
	a, b := buildMix(7), buildMix(7)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("mix sizes %d vs %d", len(a), len(b))
	}
	seen := map[service.Kind]bool{}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("request %d differs between runs", i)
		}
		if err := a[i].Validate(); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
		seen[a[i].Kind] = true
	}
	if len(seen) != len(service.Kinds()) {
		t.Fatalf("mix covers %d kinds, want %d", len(seen), len(service.Kinds()))
	}
	if c := buildMix(8); len(c) > 0 && c[0].Bench == a[0].Bench {
		t.Fatal("different seeds built the same circuit")
	}
}

// TestSoakShortRun drives the harness end to end for a fraction of a
// second: every summary section must appear and the run must exit 0.
func TestSoakShortRun(t *testing.T) {
	var out, errw bytes.Buffer
	if got := cliMain([]string{"-duration", "300ms", "-submitters", "2", "-metrics"}, &out, &errw); got != 0 {
		t.Fatalf("exit %d (stderr: %s)", got, errw.String())
	}
	for _, want := range []string{"jobs done", "latency: p50", "allocs:", "soak_job_latency"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}
