// Command soak load-tests the job service in-process: concurrent
// submitters push a deterministic mix of retime / atpg / fault_sim /
// derive_tests jobs through one service.Service for a wall-clock
// budget, then report throughput, end-to-end latency percentiles, an
// allocation summary from runtime.MemStats, and the full metrics
// registry as JSON.
//
// The result cache is disabled so every job pays its real compute
// cost, and job latencies are also folded into the shared
// internal/metrics registry (soak_job_latency) next to the service's
// own stage histograms -- the same registry servd exposes at /metrics.
//
// Typical use, paired with servd's -pprof-addr, is to run soak under
// the profiler to check the fault-simulation path stays allocation-free
// in steady state:
//
//	go run ./cmd/soak -duration 30s -submitters 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"slices"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/service"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr)) }

func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	duration := fs.Duration("duration", 5*time.Second, "wall-clock submission window")
	submitters := fs.Int("submitters", 4, "concurrent submitter goroutines")
	workers := fs.Int("workers", 0, "service worker pool size (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "workload generator seed")
	dumpMetrics := fs.Bool("metrics", false, "dump the metrics registry as JSON after the summary")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: soak [-duration 5s] [-submitters n] [-workers n] [-seed n] [-metrics]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	if *duration <= 0 || *submitters < 1 {
		fmt.Fprintln(stderr, "soak: -duration must be positive and -submitters >= 1")
		fs.Usage()
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *duration, *submitters, *workers, *seed, *dumpMetrics, stdout); err != nil {
		fmt.Fprintln(stderr, "soak:", err)
		return 1
	}
	return 0
}

// buildMix pregenerates the request pool: a few random sequential
// circuits, each submitted under every job kind. fault_sim tests are
// random but deterministic, so two soak runs with the same seed submit
// byte-identical work.
func buildMix(seed int64) []service.Request {
	rng := rand.New(rand.NewSource(seed))
	// Unbounded ATPG on even a mid-size random circuit can run for tens
	// of seconds; the soak wants many short jobs, not one long one, so
	// the generator effort is capped. Coverage does not matter here --
	// only that every service stage (parse, collapse, simulate, grade)
	// runs under load.
	spec := &service.ATPGSpec{MaxFrames: 8, MaxBacktracks: 100, MaxEvalsPerFault: 20000}
	var mix []service.Request
	for i := 0; i < 4; i++ {
		c := netlist.Random(rng, netlist.RandomParams{
			Inputs:   4 + rng.Intn(3),
			Outputs:  3 + rng.Intn(3),
			Gates:    24 + rng.Intn(40),
			DFFs:     3 + rng.Intn(5),
			MaxFanin: 4,
		})
		bench := netlist.BenchString(c)
		var vecs []string
		for v := 0; v < 16; v++ {
			bits := make([]byte, len(c.Inputs))
			for b := range bits {
				bits[b] = "01"[rng.Intn(2)]
			}
			vecs = append(vecs, string(bits))
		}
		mix = append(mix,
			service.Request{Kind: service.KindRetime, Bench: bench},
			service.Request{Kind: service.KindATPG, Bench: bench, ATPG: spec},
			service.Request{Kind: service.KindFaultSim, Bench: bench, Tests: strings.Join(vecs, ",")},
			service.Request{Kind: service.KindDeriveTests, Bench: bench, ATPG: spec},
		)
	}
	return mix
}

func run(ctx context.Context, duration time.Duration, submitters, workers int, seed int64, dumpMetrics bool, stdout io.Writer) error {
	reg := metrics.NewRegistry()
	svc, err := service.Open(service.Config{
		Workers:        workers,
		QueueDepth:     4 * submitters,
		DefaultTimeout: 60 * time.Second,
		Metrics:        reg,
		CacheBytes:     -1, // every job must pay its real compute cost
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	mix := buildMix(seed)
	latHist := reg.Histogram("soak_job_latency")

	var (
		mu        sync.Mutex
		latencies []time.Duration
		done      int
		failed    int
		byKind    = map[service.Kind]int{}
	)
	var memBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memBefore)

	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
				req := mix[i%len(mix)]
				t0 := time.Now()
				id, err := svc.Submit(req)
				if err != nil {
					// Queue full: the workers are saturated, which is the
					// point of a soak; back off briefly and retry.
					time.Sleep(time.Millisecond)
					continue
				}
				view, err := svc.Wait(ctx, id)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil || view.Status != service.StatusDone {
					failed++
				} else {
					done++
					latencies = append(latencies, lat)
					byKind[req.Kind]++
				}
				mu.Unlock()
				latHist.Observe(lat)
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	if done == 0 {
		return fmt.Errorf("no job completed in %v (%d failed)", duration, failed)
	}
	slices.Sort(latencies)
	pct := func(q float64) time.Duration {
		i := int(q*float64(len(latencies))+0.5) - 1
		return latencies[max(0, min(i, len(latencies)-1))]
	}
	allocBytes := memAfter.TotalAlloc - memBefore.TotalAlloc
	allocObjs := memAfter.Mallocs - memBefore.Mallocs

	fmt.Fprintf(stdout, "soak: %d jobs done, %d failed in %v (%.1f jobs/s, %d submitters, %d workers)\n",
		done, failed, elapsed.Round(time.Millisecond), float64(done)/elapsed.Seconds(), submitters, runtime.GOMAXPROCS(0))
	for _, k := range service.Kinds() {
		fmt.Fprintf(stdout, "  %-12s %d\n", k, byKind[k])
	}
	fmt.Fprintf(stdout, "latency: p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	fmt.Fprintf(stdout, "allocs: %.1f MiB total, %d objects, %.1f KiB/job, %d GC cycles\n",
		float64(allocBytes)/(1<<20), allocObjs,
		float64(allocBytes)/1024/float64(done+failed), memAfter.NumGC-memBefore.NumGC)
	writeHistograms(stdout, reg)
	if dumpMetrics {
		if err := reg.WriteJSON(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

// writeHistograms prints a quantile line for every histogram in the
// registry (soak's own end-to-end latency plus the service's per-stage
// timings), computed from the shared bucket snapshots -- the same
// numbers servd publishes at /metrics.
func writeHistograms(stdout io.Writer, reg *metrics.Registry) {
	type row struct {
		name string
		snap metrics.HistogramSnapshot
	}
	var rows []row
	reg.Do(func(name string, v metrics.Var) {
		if h, ok := v.(*metrics.Histogram); ok && h.Count() > 0 {
			rows = append(rows, row{name, h.Snapshot()})
		}
	})
	if len(rows) == 0 {
		return
	}
	slices.SortFunc(rows, func(a, b row) int { return strings.Compare(a.name, b.name) })
	fmt.Fprintln(stdout, "histograms:")
	for _, r := range rows {
		fmt.Fprintf(stdout, "  %-28s n=%-7d p50 %-10v p95 %-10v p99 %-10v max %v\n",
			r.name, r.snap.Count,
			r.snap.P50.Round(time.Microsecond), r.snap.P95.Round(time.Microsecond),
			r.snap.P99.Round(time.Microsecond), r.snap.Max.Round(time.Microsecond))
	}
}
