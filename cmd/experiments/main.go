// Command experiments regenerates the paper's evaluation artifacts:
//
//	experiments -table 1        Table I   (benchmark characteristics)
//	experiments -table 2        Table II  (ATPG on original vs retimed)
//	experiments -table 3        Table III (derived test set fault simulation)
//	experiments -fig6           the Fig. 6 retime-for-testability flow
//	experiments -table all      everything
//
// Absolute effort numbers are gate evaluations on this machine rather
// than 1995 DECstation CPU seconds; EXPERIMENTS.md discusses the
// correspondence of shapes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain validates the arguments before dispatching; exit code 2 marks
// a usage error (unknown flag, unknown table, stray operands), 1 a
// runtime failure.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.String("table", "all", "which table to regenerate: 1 | 2 | 3 | all")
	fig6 := fs.Bool("fig6", false, "also run the Fig. 6 flow experiment")
	only := fs.String("only", "", "restrict to circuits whose name contains this substring")
	budget := fs.Int64("budget", 0, "override total gate-evaluation budget per ATPG run (0 = default)")
	workers := fs.Int("workers", 1, "fault-shard workers per ATPG run (tables are identical at any count)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: experiments [-table 1|2|3|all] [-fig6] [-only substr] [-budget n] [-workers n]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "experiments: unexpected operand %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	switch *table {
	case "1", "2", "3", "all":
	default:
		fmt.Fprintf(stderr, "experiments: unknown table %q\n", *table)
		fs.Usage()
		return 2
	}

	opt := atpg.DefaultOptions()
	if *budget > 0 {
		opt.MaxEvalsTotal = *budget
	}
	if *workers > 1 {
		opt.Workers = *workers
	}
	switch *table {
	case "1":
		fatal(experiments.Table1(os.Stdout))
	case "2":
		runTables(opt, *only, true, false)
	case "3":
		runTables(opt, *only, false, true)
	case "all":
		fatal(experiments.Table1(os.Stdout))
		fmt.Println()
		runTables(opt, *only, true, true)
	}
	if *fig6 {
		fmt.Println()
		runFig6(opt)
	}
	return 0
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runTables(opt atpg.Options, only string, t2, t3 bool) {
	var runs []*experiments.VariantRun
	for _, v := range experiments.TableIIVariants() {
		if only != "" && !contains(v.Name(), only) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", v.Name())
		run, err := experiments.RunVariant(v, opt, t2)
		fatal(err)
		runs = append(runs, run)
	}
	if t2 {
		experiments.Table2Header(os.Stdout)
		for _, run := range runs {
			experiments.Table2Row(os.Stdout, run)
		}
		fmt.Println()
	}
	if t3 {
		experiments.Table3Header(os.Stdout)
		for _, run := range runs {
			experiments.Table3Row(os.Stdout, run)
		}
	}
}

func runFig6(opt atpg.Options) {
	fmt.Println("FIG 6 FLOW: ATPG via testability retiming vs direct ATPG (dk16.ji.sd.re)")
	v := experiments.TableIIVariants()[0]
	c, err := v.Synthesize()
	fatal(err)
	pair, _, _, err := experiments.SpeedRetime(c, 0)
	fatal(err)
	impl := pair.Retimed

	implFaults, _ := fault.Collapse(impl)
	t0 := time.Now()
	direct := atpg.Run(impl, implFaults, opt)
	directTime := time.Since(t0)

	t0 = time.Now()
	flow, err := core.Fig6Flow(impl, opt)
	fatal(err)
	flowTime := time.Since(t0)

	fmt.Printf("implementation: %d DFFs\n", len(impl.DFFs))
	fmt.Printf("direct ATPG:    FC %.1f%%  effort %d evals  (%v)\n",
		direct.FaultCoverage(), direct.Effort.Evals, directTime.Round(time.Millisecond))
	fmt.Printf("fig6 flow:      easy circuit %d DFFs, ATPG FC %.1f%% effort %d evals (%v)\n",
		len(flow.Pair.Original.DFFs), flow.EasyATPG.FaultCoverage(), flow.EasyATPG.Effort.Evals,
		flowTime.Round(time.Millisecond))
	fmt.Printf("                prefix %d vector(s); derived set achieves FC %.1f%% on the implementation\n",
		flow.Pair.PrefixLengthTests(), flow.ImplCoverage())
	if flow.EasyATPG.Effort.Evals > 0 {
		fmt.Printf("effort ratio direct/flow: %.2f\n",
			float64(direct.Effort.Evals)/float64(flow.EasyATPG.Effort.Evals))
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
