package main

import (
	"bytes"
	"testing"
)

func TestCLIMainErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"unknown table", []string{"-table", "9"}, 2},
		{"stray operand", []string{"stray"}, 2},
		{"bad budget value", []string{"-budget", "x"}, 2},
		{"bad workers value", []string{"-workers", "x"}, 2},
	}
	for _, c := range cases {
		var errw bytes.Buffer
		if got := cliMain(c.args, &errw); got != c.code {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", c.name, got, c.code, errw.String())
		}
		if errw.Len() == 0 {
			t.Errorf("%s: nothing on stderr", c.name)
		}
	}
}
