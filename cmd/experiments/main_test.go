package main

import "testing"

func TestContains(t *testing.T) {
	cases := []struct {
		s, sub string
		want   bool
	}{
		{"s510.jc.sd", "s510", true},
		{"s510.jc.sd", "jc", true},
		{"s510.jc.sd", "", true},
		{"s510.jc.sd", "s820", false},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := contains(c.s, c.sub); got != c.want {
			t.Errorf("contains(%q, %q) = %v", c.s, c.sub, got)
		}
	}
}
