package main

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestCLIMainErrorPaths(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.kiss2")
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"no input at all", nil, 2},
		{"too many operands", []string{"a.kiss2", "b.kiss2"}, 2},
		{"benchmark and file together", []string{"-benchmark", "dk16", "a.kiss2"}, 2},
		{"missing kiss2 file", []string{missing}, 1},
		{"unknown benchmark", []string{"-benchmark", "zz99"}, 1},
		{"unknown encoding", []string{"-benchmark", "dk16", "-encoding", "xx"}, 1},
	}
	for _, c := range cases {
		var errw bytes.Buffer
		if got := cliMain(c.args, &errw); got != c.code {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", c.name, got, c.code, errw.String())
		}
		if errw.Len() == 0 {
			t.Errorf("%s: nothing on stderr", c.name)
		}
	}
}
