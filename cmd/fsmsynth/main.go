// Command fsmsynth synthesizes a finite-state machine to a bench-format
// circuit. The FSM is either a KISS2 file or one of the built-in
// generated benchmarks reproducing the paper's Table I machines
// (dk16, pma, s510, s820, s832, scf).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fsmgen"
	"repro/internal/netlist"
)

func main() {
	bench := flag.String("benchmark", "", "built-in benchmark name instead of a KISS2 file")
	enc := flag.String("encoding", "ji", "state encoding: ji | jo | jc")
	script := flag.String("script", "sd", "synthesis script: sd | sr")
	reset := flag.Bool("reset", false, "add an explicit reset line (forced for benchmarks that used one)")
	kissOut := flag.Bool("kiss", false, "emit the FSM as KISS2 instead of synthesizing")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fsmsynth [flags] [machine.kiss2]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(*bench, flag.Arg(0), *enc, *script, *reset, *kissOut); err != nil {
		fmt.Fprintln(os.Stderr, "fsmsynth:", err)
		os.Exit(1)
	}
}

func run(benchName, kissPath, encName, scrName string, reset, kissOut bool) error {
	var f *fsmgen.FSM
	switch {
	case benchName != "":
		var spec fsmgen.BenchmarkSpec
		var err error
		f, spec, err = fsmgen.Benchmark(benchName)
		if err != nil {
			return err
		}
		reset = reset || spec.Reset
	case kissPath != "":
		file, err := os.Open(kissPath)
		if err != nil {
			return err
		}
		defer file.Close()
		f, err = fsmgen.ParseKISS2(kissPath, file)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -benchmark or a KISS2 file")
	}
	if kissOut {
		return fsmgen.WriteKISS2(os.Stdout, f)
	}
	enc, ok := fsmgen.ParseEncoding(encName)
	if !ok {
		return fmt.Errorf("unknown encoding %q", encName)
	}
	scr, ok := fsmgen.ParseScript(scrName)
	if !ok {
		return fmt.Errorf("unknown script %q", scrName)
	}
	c, err := fsmgen.Synthesize(f, fsmgen.SynthOptions{Encoding: enc, Script: scr, Reset: reset})
	if err != nil {
		return err
	}
	st := c.Stats()
	fmt.Fprintf(os.Stderr, "%s: %d inputs, %d outputs, %d gates, %d DFFs, period %d\n",
		c.Name, st.Inputs, st.Outputs, st.Gates, st.DFFs, c.MaxCombDelay())
	return netlist.WriteBench(os.Stdout, c)
}
