// Command fsmsynth synthesizes a finite-state machine to a bench-format
// circuit. The FSM is either a KISS2 file or one of the built-in
// generated benchmarks reproducing the paper's Table I machines
// (dk16, pma, s510, s820, s832, scf).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/fsmgen"
	"repro/internal/netlist"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses the arguments and dispatches; exit code 2 marks a
// usage error (unknown flag, stray operands, no input, or both inputs
// at once), 1 a runtime failure.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsmsynth", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("benchmark", "", "built-in benchmark name instead of a KISS2 file")
	enc := fs.String("encoding", "ji", "state encoding: ji | jo | jc")
	script := fs.String("script", "sd", "synthesis script: sd | sr")
	reset := fs.Bool("reset", false, "add an explicit reset line (forced for benchmarks that used one)")
	kissOut := fs.Bool("kiss", false, "emit the FSM as KISS2 instead of synthesizing")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fsmsynth [flags] [machine.kiss2]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fmt.Fprintf(stderr, "fsmsynth: too many operands\n")
		fs.Usage()
		return 2
	}
	if *bench == "" && fs.NArg() == 0 {
		fmt.Fprintf(stderr, "fsmsynth: need -benchmark or a KISS2 file\n")
		fs.Usage()
		return 2
	}
	if *bench != "" && fs.NArg() == 1 {
		fmt.Fprintf(stderr, "fsmsynth: -benchmark and a KISS2 file are mutually exclusive\n")
		fs.Usage()
		return 2
	}
	if err := run(*bench, fs.Arg(0), *enc, *script, *reset, *kissOut); err != nil {
		fmt.Fprintln(stderr, "fsmsynth:", err)
		return 1
	}
	return 0
}

func run(benchName, kissPath, encName, scrName string, reset, kissOut bool) error {
	var f *fsmgen.FSM
	switch {
	case benchName != "":
		var spec fsmgen.BenchmarkSpec
		var err error
		f, spec, err = fsmgen.Benchmark(benchName)
		if err != nil {
			return err
		}
		reset = reset || spec.Reset
	case kissPath != "":
		file, err := os.Open(kissPath)
		if err != nil {
			return err
		}
		defer file.Close()
		f, err = fsmgen.ParseKISS2(kissPath, file)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -benchmark or a KISS2 file")
	}
	if kissOut {
		return fsmgen.WriteKISS2(os.Stdout, f)
	}
	enc, ok := fsmgen.ParseEncoding(encName)
	if !ok {
		return fmt.Errorf("unknown encoding %q", encName)
	}
	scr, ok := fsmgen.ParseScript(scrName)
	if !ok {
		return fmt.Errorf("unknown script %q", scrName)
	}
	c, err := fsmgen.Synthesize(f, fsmgen.SynthOptions{Encoding: enc, Script: scr, Reset: reset})
	if err != nil {
		return err
	}
	st := c.Stats()
	fmt.Fprintf(os.Stderr, "%s: %d inputs, %d outputs, %d gates, %d DFFs, period %d\n",
		c.Name, st.Inputs, st.Outputs, st.Gates, st.DFFs, c.MaxCombDelay())
	return netlist.WriteBench(os.Stdout, c)
}
