package main

import (
	"os"
	"path/filepath"
	"testing"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunBenchmarkSynthesis(t *testing.T) {
	silence(t)
	if err := run("dk16", "", "ji", "sd", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunKissOut(t *testing.T) {
	silence(t)
	if err := run("pma", "", "", "", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunKissFile(t *testing.T) {
	silence(t)
	path := filepath.Join(t.TempDir(), "m.kiss2")
	src := ".i 1\n.o 1\n.r a\n0 a a 0\n1 a b 1\n- b a 0\n.e\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, "jo", "sr", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "ji", "sd", false, false); err == nil {
		t.Fatal("no input accepted")
	}
	if err := run("nosuch", "", "ji", "sd", false, false); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	silence(t)
	if err := run("dk16", "", "zz", "sd", false, false); err == nil {
		t.Fatal("bad encoding accepted")
	}
	if err := run("dk16", "", "ji", "zz", false, false); err == nil {
		t.Fatal("bad script accepted")
	}
}
