// Command workerd is a lightweight ATPG shard worker: a single
// execution slot (by default) behind the shard protocol that
// internal/dispatch fans jobs out over.
//
// Endpoints:
//
//	POST   /v1/shards       submit a shard; returns {"id": ...}
//	GET    /v1/shards/{id}  poll status; carries the latest partial
//	                        checkpoint so the dispatcher can migrate
//	                        this worker's work if it dies
//	DELETE /v1/shards/{id}  cancel and forget a shard
//	GET    /healthz         readiness probe: 200 "ok" while serving,
//	                        503 "draining" once SIGTERM drain begins
//	GET    /metrics         worker counters as one JSON object
//	GET    /v1/logs         tail of the in-memory log ring
//
// A worker holds no durable state: everything it computes is a pure
// function of the submitted shard, re-runnable anywhere, so crash
// recovery is the dispatcher's job (retry elsewhere from the last
// checkpoint), not the worker's.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dispatch"
	"repro/internal/httpmw"
	"repro/internal/logger"
	"repro/internal/metrics"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr)) }

func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("workerd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":9100", "listen address (use :0 for an ephemeral port)")
	slots := fs.Int("slots", 1, "concurrent shard slots")
	every := fs.Int("checkpoint-every", 0, "default partial-checkpoint cadence in decided faults (0 = library default)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logBuffer := fs.Int("log-buffer", logger.DefaultCapacity, "in-memory log ring capacity in records (rounded up to a power of two)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: workerd [-addr :9100] [-slots n] [-checkpoint-every n] [-log-level info]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	level, err := logger.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "workerd:", err)
		return 2
	}
	if err := serve(*addr, *slots, *every, logger.New(level, *logBuffer), stdout); err != nil {
		fmt.Fprintln(stderr, "workerd:", err)
		return 1
	}
	return 0
}

// buildHandler mounts the worker's shard API plus the log tail behind
// the shared middleware chain. Shards arrive as whole circuits in the
// request body, hence the generous 64 MiB limit.
func buildHandler(w *dispatch.Worker, lg *logger.Logger, reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", w.Handler())
	mux.Handle("/v1/logs", lg.TailHandler())
	return httpmw.Stack(httpmw.Config{
		Log:      lg,
		Registry: reg,
		MaxBody:  64 << 20,
	})(mux)
}

func serve(addr string, slots, every int, lg *logger.Logger, stdout io.Writer) error {
	reg := metrics.NewRegistry()
	w := dispatch.NewWorker(dispatch.WorkerConfig{
		MaxConcurrent:   slots,
		CheckpointEvery: every,
		Metrics:         reg,
		Logger:          lg,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           buildHandler(w, lg, reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// The actual bound address, so callers using :0 can parse the port.
	fmt.Fprintf(stdout, "workerd listening on %s\n", ln.Addr())

	select {
	case err := <-errc:
		w.Close()
		return err
	case <-ctx.Done():
		// Readiness flips before the listener closes: probes see 503
		// "draining" immediately, so the dispatcher stops picking this
		// worker while its in-flight shards finish under the budget.
		w.StartDraining()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		w.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Fprintln(stdout, "workerd: shut down")
		return nil
	}
}
