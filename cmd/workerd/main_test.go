package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dispatch"
	"repro/internal/httpmw"
	"repro/internal/logger"
	"repro/internal/metrics"
)

// TestWorkerHealthzDraining: readiness-vs-liveness for workerd,
// matching servd's behavior -- /healthz answers 200 "ok" while
// serving and flips to 503 "draining" once the SIGTERM drain begins
// (serve calls StartDraining before shutting the listener down), so
// the dispatcher's health checks stop routing new shards to a worker
// on its way out while its in-flight shards finish.
func TestWorkerHealthzDraining(t *testing.T) {
	lg := logger.New(logger.Warn, 16)
	reg := metrics.NewRegistry()
	w := dispatch.NewWorker(dispatch.WorkerConfig{MaxConcurrent: 1, Metrics: reg, Logger: lg})
	t.Cleanup(w.Close)
	srv := httptest.NewServer(buildHandler(w, lg, reg))
	t.Cleanup(srv.Close)

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get(); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("live healthz = %d %q, want 200 \"ok\"", code, body)
	}
	w.StartDraining()
	if code, body := get(); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("draining healthz = %d %q, want 503 \"draining\"", code, body)
	}
}

// TestBuildHandlerObservability: the worker's production handler
// echoes (or mints) X-Request-Id, logs rejected shards as tagged
// warnings, serves the log tail at /v1/logs, and keeps the shard API
// routes working behind the chain.
func TestBuildHandlerObservability(t *testing.T) {
	lg := logger.New(logger.Debug, 256)
	reg := metrics.NewRegistry()
	w := dispatch.NewWorker(dispatch.WorkerConfig{MaxConcurrent: 1, Metrics: reg, Logger: lg})
	t.Cleanup(w.Close)
	srv := httptest.NewServer(buildHandler(w, lg, reg))
	t.Cleanup(srv.Close)

	// Health stays reachable through the chain, and a response with no
	// inbound ID still carries a freshly minted one.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if id := resp.Header.Get(httpmw.Header); !httpmw.ValidID(id) {
		t.Fatalf("healthz response request ID %q invalid", id)
	}

	// A hostile shard is rejected with 400, and the rejection lands in
	// the ring tagged with the caller's request ID.
	req, err := http.NewRequest("POST", srv.URL+"/v1/shards", strings.NewReader(`{"bench":"junk"}`))
	if err != nil {
		t.Fatal(err)
	}
	const reqID = "WORKERTESTID1"
	req.Header.Set(httpmw.Header, reqID)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage shard status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(httpmw.Header); got != reqID {
		t.Fatalf("inbound request ID not echoed: got %q", got)
	}

	// The tail endpoint serves the ring over HTTP; it must contain both
	// the tagged rejection and its access-log line.
	resp, err = http.Get(srv.URL + "/v1/logs")
	if err != nil {
		t.Fatal(err)
	}
	var recs []struct {
		Level string `json:"level"`
		Msg   string `json:"msg"`
	}
	err = json.NewDecoder(resp.Body).Decode(&recs)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var rejected, access bool
	for _, r := range recs {
		if strings.Contains(r.Msg, "id="+reqID) {
			if r.Level == "WARN" && strings.Contains(r.Msg, "reject") {
				rejected = true
			}
			if strings.Contains(r.Msg, "route=/v1/shards") && strings.Contains(r.Msg, "status=400") {
				access = true
			}
		}
	}
	if !rejected || !access {
		t.Fatalf("ring lacks tagged rejection (rejected=%v access=%v):\n%+v", rejected, access, recs)
	}

	// The chain feeds the shared registry: the shard route histogram
	// recorded the rejected call.
	if n := reg.Histogram("http.latency.POST /v1/shards").Count(); n != 1 {
		t.Fatalf("shard route histogram count = %d, want 1", n)
	}
}

// TestCLIRejectsBadLogLevel: flag validation fails fast with exit
// code 2 before any listener binds.
func TestCLIRejectsBadLogLevel(t *testing.T) {
	var out, errb strings.Builder
	if code := cliMain([]string{"-log-level", "noisy"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "noisy") {
		t.Fatalf("stderr does not name the bad level: %s", errb.String())
	}
}
