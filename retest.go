// Package retest is the public facade of the library: test set
// preservation of retimed circuits, after El-Maleh, Marchok, Rajski and
// Maly, "On Test Set Preservation of Retimed Circuits", DAC 1995.
//
// The library decomposes into focused subsystems under internal/ --
// netlist modeling, 3-valued and fault simulation, Leiserson-Saxe
// retiming, state-transition-graph analysis, FSM synthesis, and a
// sequential structural ATPG -- and this package re-exports the
// workflow a user needs:
//
//	c, _ := retest.ParseBenchFile("design.bench")
//	pair, oldP, newP, _ := retest.MinPeriodPair(c)   // performance retiming
//	res := retest.ATPG(pair.Original, retest.CollapsedFaults(pair.Original), retest.DefaultATPGOptions())
//	derived := pair.DeriveTestSet(res.TestSet, retest.FillZeros, 0)
//	cov := retest.FaultSimulate(pair.Retimed, retest.CollapsedFaults(pair.Retimed), derived)
//
// or, in the reverse (Fig. 6) direction, retest.RetimeForTestability
// generates tests on a register-minimized version of an implemented
// circuit and maps them back with the pre-determined prefix.
package retest

import (
	"context"
	"io"
	"os"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/fsmgen"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/resultcache"
	"repro/internal/retime"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/verify"
)

// Core circuit and stimulus types.
type (
	// Circuit is a gate-level synchronous sequential circuit.
	Circuit = netlist.Circuit
	// Vec is one input or output vector; Seq is a vector sequence.
	Vec = sim.Vec
	Seq = sim.Seq
	// Fault is a single stuck-at fault.
	Fault = fault.Fault
	// RetimedPair couples a circuit with a retimed version and carries
	// the fault correspondence and prefix lengths of the paper.
	RetimedPair = core.RetimedPair
	// PreservationReport is the outcome of a Theorem 4 check.
	PreservationReport = core.PreservationReport
	// ATPGOptions tunes the sequential test generator.
	ATPGOptions = atpg.Options
	// ATPGResult is a test-generation outcome (tests, coverage, effort).
	ATPGResult = atpg.Result
	// FaultSimResult is a fault-simulation outcome.
	FaultSimResult = fsim.Result
	// FaultSimulator is the persistent, event-driven, fault-dropping
	// simulator behind FaultSimulate; use it directly to carry state
	// and dropped faults across sequences.
	FaultSimulator = fsim.Simulator
	// FaultSimStats counts fault-simulation work (cycles, gate
	// evaluations, drops, repacks).
	FaultSimStats = fsim.Stats
	// ATPGParallelStats reports the speculation bookkeeping of a
	// fault-sharded ParallelATPG run.
	ATPGParallelStats = atpg.ParallelStats
	// ATPGCheckpoint is a durable snapshot of an ATPG run's decision
	// log; resuming from one reproduces the uninterrupted run's result
	// byte for byte.
	ATPGCheckpoint = atpg.Checkpoint
	// ATPGCheckpointConfig wires periodic checkpoint writes (and a
	// resume source) into ATPGOptions.Checkpoint.
	ATPGCheckpointConfig = atpg.CheckpointConfig
	// ResultCache is a content-addressed store of finished results,
	// keyed by the same (circuit, fault list, options) identity hashes
	// that bind checkpoints: a sharded in-memory LRU, an optional
	// durable tier of checksummed entry files, and single-flight dedup
	// of concurrent identical computations.
	ResultCache = resultcache.Cache
	// ResultCacheConfig tunes a ResultCache (memory budget, shard
	// count, durable directory, metrics registry).
	ResultCacheConfig = resultcache.Config
	// ResultCacheKey names one cached result.
	ResultCacheKey = resultcache.Key
	// CacheSource reports where a cached answer came from: "miss",
	// "hit" (memory), "hit-disk", or "shared" (a concurrent identical
	// computation's single flight).
	CacheSource = resultcache.Source
	// Fig6Result is the outcome of the retime-for-testability flow.
	Fig6Result = core.Fig6Result
	// PrefixFill selects how arbitrary prefix vectors are filled.
	PrefixFill = core.PrefixFill
	// FSM is a KISS2 finite-state machine.
	FSM = fsmgen.FSM
	// RetimingGraph is the Leiserson-Saxe graph of a circuit.
	RetimingGraph = retime.Graph
)

// Prefix fill modes (Theorem 4 permits arbitrary vectors).
const (
	FillZeros  = core.FillZeros
	FillOnes   = core.FillOnes
	FillRandom = core.FillRandom
)

// ParseBench reads a circuit in ISCAS-89 bench format.
func ParseBench(name string, r io.Reader) (*Circuit, error) { return netlist.ParseBench(name, r) }

// ParseBenchFile reads a bench file from disk.
func ParseBenchFile(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return netlist.ParseBench(path, f)
}

// WriteBench writes a circuit in bench format.
func WriteBench(w io.Writer, c *Circuit) error { return netlist.WriteBench(w, c) }

// ParseSeq parses comma-separated vector literals such as "001,000".
func ParseSeq(s string) Seq { return sim.ParseSeq(s) }

// CollapsedFaults returns one representative per structural fault
// equivalence class.
func CollapsedFaults(c *Circuit) []Fault {
	reps, _ := fault.Collapse(c)
	return reps
}

// MinPeriodPair retimes the circuit for minimum clock period and
// returns the pair plus the periods before and after -- the
// performance-driven direction whose test cost Table II measures.
func MinPeriodPair(c *Circuit) (*RetimedPair, int, int, error) { return core.MinPeriodPair(c) }

// MinPeriodPairContext is MinPeriodPair with cooperative cancellation:
// the solver checks ctx between FEAS rounds and stops early with ctx's
// error.
func MinPeriodPairContext(ctx context.Context, c *Circuit) (*RetimedPair, int, int, error) {
	return core.MinPeriodPairContext(ctx, c)
}

// BuildPair materializes both sides of a retiming over a graph
// obtained from Graph.
func BuildPair(g *RetimingGraph, r retime.Retiming, origName, retName string) (*RetimedPair, error) {
	return core.BuildPair(g, r, origName, retName)
}

// Graph converts a circuit to its retiming graph for custom retimings.
func Graph(c *Circuit) *RetimingGraph { return retime.FromCircuit(c) }

// DefaultATPGOptions returns the generator settings the experiment
// harness uses.
func DefaultATPGOptions() ATPGOptions { return atpg.DefaultOptions() }

// ATPG runs the sequential structural test generator.
func ATPG(c *Circuit, faults []Fault, opt ATPGOptions) *ATPGResult { return atpg.Run(c, faults, opt) }

// ATPGContext is ATPG with cooperative cancellation: the generator
// checks ctx every few hundred PODEM decisions and, when interrupted,
// returns the tests found so far along with ctx's error. With an
// uncancelled context the result is byte-identical to ATPG.
func ATPGContext(ctx context.Context, c *Circuit, faults []Fault, opt ATPGOptions) (*ATPGResult, error) {
	return atpg.RunContext(ctx, c, faults, opt)
}

// ParallelATPG runs the fault-sharded test generator: workers shard
// workers speculate PODEM searches ahead of a deterministic merge, so
// the result is byte-identical to ATPG at every worker count (modulo
// wall-clock time and the Parallel stats block) while the deterministic
// phase scales with physical cores.
func ParallelATPG(c *Circuit, faults []Fault, opt ATPGOptions, workers int) *ATPGResult {
	return atpg.ParallelRun(c, faults, opt, workers)
}

// ParallelATPGContext is ParallelATPG with cooperative cancellation
// (the ATPGContext contract: partial result plus the context error on
// early stop).
func ParallelATPGContext(ctx context.Context, c *Circuit, faults []Fault, opt ATPGOptions, workers int) (*ATPGResult, error) {
	return atpg.ParallelRunContext(ctx, c, faults, opt, workers)
}

// LoadATPGCheckpoint reads and decodes a checkpoint file; the error
// distinguishes a missing file (os.ErrNotExist) from a corrupt or
// version-skewed one (atpg.ErrCheckpointCorrupt/ErrCheckpointVersion).
func LoadATPGCheckpoint(path string) (*ATPGCheckpoint, error) { return atpg.LoadCheckpoint(path) }

// ATPGWithCheckpoint is ATPGContext with durable crash recovery: the
// run writes an atomic checkpoint to path every `every` decided faults
// (0 selects the default cadence) and, when path already holds a
// usable checkpoint of the same run, resumes from it instead of
// starting over. Killed anywhere and re-invoked, it converges on the
// byte-identical result of an uninterrupted run; an unusable
// checkpoint (corrupt, version skew, different circuit, fault list or
// options) is discarded and the run starts clean.
func ATPGWithCheckpoint(ctx context.Context, c *Circuit, faults []Fault, opt ATPGOptions, path string, every int) (*ATPGResult, error) {
	opt.Checkpoint.Path = path
	opt.Checkpoint.Every = every
	atpg.TryResume(&opt, c, faults)
	return atpg.RunContext(ctx, c, faults, opt)
}

// NewResultCache creates a content-addressed result cache. The zero
// config is usable (64 MiB in-memory budget, no durable tier); set
// Dir for persistence across processes, in which case Sweep() at
// startup collects crash residue.
func NewResultCache(cfg ResultCacheConfig) *ResultCache { return resultcache.New(cfg) }

// ATPGCacheKey returns the content-addressed identity of an ATPG run:
// equal keys guarantee byte-identical results. Worker count and
// checkpoint configuration do not contribute (both are
// result-neutral).
func ATPGCacheKey(c *Circuit, faults []Fault, opt ATPGOptions) ResultCacheKey {
	return atpg.CacheKey(c, faults, opt)
}

// ATPGCached is ATPGContext behind a result cache: an identical prior
// run is decoded from its stored payload (source "hit" or "hit-disk",
// with Effort.Time zero and Parallel nil -- no generation happened), a
// miss runs the generator and stores the result. A nil cache degrades
// to a plain run. Cancellation still returns partial results with
// ctx's error; partial results are never cached.
func ATPGCached(ctx context.Context, cache *ResultCache, c *Circuit, faults []Fault, opt ATPGOptions) (*ATPGResult, CacheSource, error) {
	return atpg.CachedRun(ctx, cache, c, faults, opt)
}

// FaultSimulate fault-simulates a test sequence from the all-X initial
// state and reports detections.
func FaultSimulate(c *Circuit, faults []Fault, seq Seq) *FaultSimResult {
	return fsim.Run(c, faults, seq)
}

// FaultSimulateContext is FaultSimulate with cooperative cancellation:
// the simulator checks ctx every 128-cycle block and, when
// interrupted, reports coverage over the prefix it processed along
// with ctx's error.
func FaultSimulateContext(ctx context.Context, c *Circuit, faults []Fault, seq Seq) (*FaultSimResult, error) {
	return fsim.RunContext(ctx, c, faults, seq)
}

// NewFaultSimulator creates a persistent fault simulator over the
// fault list, for incremental Simulate/Drop workflows (the ATPG
// fault-dropping pattern).
func NewFaultSimulator(c *Circuit, faults []Fault) *FaultSimulator {
	return fsim.NewSimulator(c, faults)
}

// CoverageCurve returns cumulative fault detections after each vector.
func CoverageCurve(c *Circuit, faults []Fault, seq Seq) []int {
	return fsim.CoverageCurve(c, faults, seq)
}

// CompactTests drops test subsequences that contribute no detections,
// returning the compacted list (see atpg.CompactTests).
func CompactTests(c *Circuit, faults []Fault, tests []Seq) []Seq {
	return atpg.CompactTests(c, faults, tests)
}

// RetimeForTestability runs the paper's Fig. 6 technique on an
// implemented circuit: ATPG on a register-minimized retiming, then a
// derived (prefixed) test set for the implementation.
func RetimeForTestability(impl *Circuit, opt ATPGOptions) (*Fig6Result, error) {
	return core.Fig6Flow(impl, opt)
}

// RetimeForTestabilityContext is RetimeForTestability with cooperative
// cancellation threaded through every stage (flow solve, ATPG, fault
// simulation).
func RetimeForTestabilityContext(ctx context.Context, impl *Circuit, opt ATPGOptions) (*Fig6Result, error) {
	return core.Fig6FlowContext(ctx, impl, opt)
}

// VerifyRetiming checks that retimed behaves as a retiming of original:
// exact state-transition-graph equivalence when both machines are small
// enough, bounded 3-valued co-simulation otherwise. lagBound is the
// maximum number of atomic moves of the retiming.
func VerifyRetiming(original, retimed *Circuit, lagBound int) (*verify.Result, error) {
	return verify.Retiming(original, retimed, lagBound)
}

// ScanATPG generates full-scan (combinational) tests -- the
// design-for-testability baseline whose silicon cost the paper's
// technique avoids.
func ScanATPG(c *Circuit, faults []Fault, opt ATPGOptions) *atpg.ScanResult {
	return atpg.RunScan(c, faults, opt)
}

// GeneticATPG runs the simulation-based (GATEST-style) sequential test
// generator, the structural engine's classical alternative.
func GeneticATPG(c *Circuit, faults []Fault, opt atpg.GeneticOptions) *ATPGResult {
	return atpg.RunGenetic(c, faults, opt)
}

// Job service types: the concurrent retime-for-test service cmd/servd
// exposes over HTTP, re-exported for embedding in other processes.
type (
	// JobService runs typed retime-for-test jobs on a bounded worker
	// pool with per-job deadlines and an in-memory status store.
	JobService = service.Service
	// JobServiceConfig tunes the pool, the queue and the default
	// per-job timeout.
	JobServiceConfig = service.Config
	// JobRequest describes one job; circuits travel as bench text.
	JobRequest = service.Request
	// JobView is an immutable job snapshot (status, result, timings).
	JobView = service.View
	// JobKind selects a job's pipeline.
	JobKind = service.Kind
	// MetricsRegistry is the atomic counter/gauge/histogram registry
	// the service and the experiment harness record into.
	MetricsRegistry = metrics.Registry
)

// Job kinds: the individual pipeline pieces plus the paper's full
// Fig. 6 flow as one job.
const (
	JobRetime      = service.KindRetime
	JobATPG        = service.KindATPG
	JobFaultSim    = service.KindFaultSim
	JobDeriveTests = service.KindDeriveTests
)

// NewJobService starts a job service; Close it when done. It panics
// when the configured journal cannot be opened; use OpenJobService to
// handle that error.
func NewJobService(cfg JobServiceConfig) *JobService { return service.New(cfg) }

// OpenJobService starts a job service, replaying the configured job
// journal first: jobs that were queued or running when the previous
// process died are re-queued and re-run.
func OpenJobService(cfg JobServiceConfig) (*JobService, error) { return service.Open(cfg) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// ParseKISS2 reads a KISS2 FSM description.
func ParseKISS2(name string, r io.Reader) (*FSM, error) { return fsmgen.ParseKISS2(name, r) }

// SynthesizeFSM compiles an FSM to a gate-level circuit using the named
// state encoding ("ji", "jo", "jc") and synthesis script ("sd", "sr"),
// optionally with an explicit reset line.
func SynthesizeFSM(f *FSM, encoding, script string, reset bool) (*Circuit, error) {
	enc, ok := fsmgen.ParseEncoding(encoding)
	if !ok {
		enc = fsmgen.EncInput
	}
	scr, ok2 := fsmgen.ParseScript(script)
	if !ok2 {
		scr = fsmgen.ScriptDelay
	}
	return fsmgen.Synthesize(f, fsmgen.SynthOptions{Encoding: enc, Script: scr, Reset: reset})
}
