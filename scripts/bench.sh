#!/bin/sh
# bench.sh — run the tracked benchmark set and write benchmarks/latest.txt.
#
#   BENCH_PKGS     packages to benchmark   (default: ./internal/fsim ./internal/atpg)
#   BENCH_PATTERN  -bench regexp           (default: BenchmarkFsim|BenchmarkATPGWithDropping|BenchmarkATPGParallel|BenchmarkATPGCheckpointOverhead)
#   BENCH_COUNT    -count                  (default: 1)
#
# Review the result, then promote it with scripts/bench-update.sh.
set -eu
cd "$(dirname "$0")/.."

PKGS="${BENCH_PKGS:-./internal/fsim ./internal/atpg}"
PATTERN="${BENCH_PATTERN:-BenchmarkFsim|BenchmarkATPGWithDropping|BenchmarkATPGParallel|BenchmarkATPGCheckpointOverhead}"
COUNT="${BENCH_COUNT:-1}"

mkdir -p benchmarks
go test -run '^$' -bench "$PATTERN" -count "$COUNT" -benchmem $PKGS | tee benchmarks/latest.txt
echo "wrote benchmarks/latest.txt"
