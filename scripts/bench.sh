#!/bin/sh
# bench.sh — run the tracked benchmark set and write benchmarks/latest.txt.
#
#   BENCH_PKGS     packages to benchmark   (default: ./internal/fsim ./internal/atpg)
#   BENCH_PATTERN  -bench regexp           (default: BenchmarkFsim|BenchmarkATPGWithDropping|BenchmarkATPGParallel|BenchmarkATPGCheckpointOverhead)
#   BENCH_COUNT    -count                  (default: 1)
#   BENCH_CPUS     -cpu matrix for the parallel benchmarks, appended as
#                  a second pass (default: 1,2,4,8; empty = skip).
#                  GOMAXPROCS above the host's core count measures
#                  scheduling overhead, not speedup -- the host line at
#                  the top of latest.txt records what the numbers mean.
#   BENCH_MATRIX   -bench regexp for the matrix pass
#                  (default: BenchmarkFsimParallel|BenchmarkATPGParallel|BenchmarkFsimEventDriven)
#
# Review the result, then promote it with scripts/bench-update.sh.
set -eu
cd "$(dirname "$0")/.."

PKGS="${BENCH_PKGS:-./internal/fsim ./internal/atpg}"
PATTERN="${BENCH_PATTERN:-BenchmarkFsim|BenchmarkATPGWithDropping|BenchmarkATPGParallel|BenchmarkATPGCheckpointOverhead}"
COUNT="${BENCH_COUNT:-1}"
CPUS="${BENCH_CPUS-1,2,4,8}"
MATRIX="${BENCH_MATRIX:-BenchmarkFsimParallel|BenchmarkATPGParallel|BenchmarkFsimEventDriven}"

mkdir -p benchmarks
{
    echo "# host: $(nproc) core(s), $(sed -n 's/^model name[^:]*: //p' /proc/cpuinfo | head -1)"
    echo "# date: $(date -u +%Y-%m-%dT%H:%M:%SZ)"
} | tee benchmarks/latest.txt
go test -run '^$' -bench "$PATTERN" -count "$COUNT" -benchmem $PKGS | tee -a benchmarks/latest.txt
if [ -n "$CPUS" ]; then
    echo "# multi-core matrix: -cpu $CPUS" | tee -a benchmarks/latest.txt
    go test -run '^$' -bench "$MATRIX" -cpu "$CPUS" -count "$COUNT" -benchmem $PKGS | tee -a benchmarks/latest.txt
fi
echo "wrote benchmarks/latest.txt"
