#!/bin/sh
# bench-json.sh — convert `go test -bench` output (benchmarks/latest.txt
# by default, or the file named in $1) to a JSON object keyed by
# benchmark name:
#
#   {"BenchmarkFsimEventDriven": {"ns_per_op": 18240768,
#                                 "bytes_per_op": 966593,
#                                 "allocs_per_op": 320}, ...}
#
# Missing -benchmem columns are reported as null. A "# host: ..."
# comment line (written by bench.sh) becomes a "_host" entry, so every
# JSON record states the core count its numbers were measured on.
# Multi-core matrix rows keep the go-test name suffixes
# (BenchmarkFoo/procs=2-4 etc.), so one file can hold the whole -cpu
# matrix without collisions. The committed BENCH_fsim.json is produced
# with
#
#   scripts/bench-json.sh benchmarks/latest.txt > BENCH_fsim.json
set -eu
cd "$(dirname "$0")/.."

IN="${1:-benchmarks/latest.txt}"
if [ ! -f "$IN" ]; then
    echo "bench-json: $IN missing; run scripts/bench.sh first" >&2
    exit 1
fi

awk '
    /^# host: / {
        host = substr($0, 9)
        gsub(/"/, "", host)
    }
    /^Benchmark/ {
        name = $1
        ns = bytes = allocs = "null"
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op")    ns = $i
            if ($(i + 1) == "B/op")     bytes = $i
            if ($(i + 1) == "allocs/op") allocs = $i
        }
        # Last run of a repeated benchmark wins, matching bench-compare.
        row[name] = sprintf("  %c%s%c: {%cns_per_op%c: %s, %cbytes_per_op%c: %s, %callocs_per_op%c: %s}",
            34, name, 34, 34, 34, ns, 34, 34, bytes, 34, 34, allocs)
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
    END {
        print "{"
        if (host != "")
            printf "  %c_host%c: %c%s%c%s\n", 34, 34, 34, host, 34, (n ? "," : "")
        for (i = 1; i <= n; i++)
            printf "%s%s\n", row[order[i]], (i < n ? "," : "")
        print "}"
    }
' "$IN"
