#!/bin/sh
# check.sh — the tier-1 gate: formatting, vet, build, and the full test
# suite under the race detector.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race (concurrency-heavy packages, fail fast)"
go test -race -count=1 ./internal/fsim/... ./internal/service/... ./internal/failpoint/... ./cmd/servd/...

echo "== go test -race -short (fault-sharded ATPG determinism + Theorem 1-4 metamorphic suite)"
# -short keeps the gate fast: 12 theorem pairs and the 5-repeat
# determinism gauntlet. The full 50-pair suite runs race-free in the
# plain `go test ./...` tier-1 pass; drop -short here for a nightly run.
go test -race -short -count=1 -run 'TestParallel|TestTheorem' ./internal/atpg/ ./internal/verify/

echo "== go test -race"
go test -race -short ./...

echo "== fuzz smoke (journal replay must survive arbitrary crash residue)"
go test -run='^$' -fuzz=FuzzJournalReplay -fuzztime=5s ./internal/service/

echo "== fuzz smoke (.bench parser: accepted inputs must round-trip)"
go test -run='^$' -fuzz=FuzzParseBench -fuzztime=5s ./internal/netlist/

echo "check.sh: all green"
