#!/bin/sh
# check.sh — the tier-1 gate: formatting, vet, build, and the full test
# suite under the race detector.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race (concurrency-heavy packages, fail fast)"
go test -race -count=1 ./internal/fsim/... ./internal/service/... ./internal/failpoint/... ./cmd/servd/...

echo "== go test -race"
go test -race ./...

echo "== fuzz smoke (journal replay must survive arbitrary crash residue)"
go test -run='^$' -fuzz=FuzzJournalReplay -fuzztime=5s ./internal/service/

echo "check.sh: all green"
