#!/bin/sh
# check.sh — the tier-1 gate: formatting, vet, build, and the full test
# suite under the race detector.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race (concurrency-heavy packages, fail fast)"
go test -race -count=1 ./internal/fsim/... ./internal/service/... ./internal/failpoint/... ./cmd/servd/... ./internal/resultcache/... ./internal/httpmw/... ./internal/logger/... ./internal/metrics/...

echo "== go test -race (result cache: hit/miss byte-identity, corrupt-entry discard, single-flight)"
# The cache round-trip gate: a repeat submission is served byte-identical
# from memory and from disk, a corrupted entry file is discarded (never
# served), and N concurrent identical submissions run ATPG exactly once.
go test -race -count=1 -run 'TestCachedRun|TestCacheServesRepeatedSubmission|TestCacheDiskTierSurvivesRestart|TestCorruptEntryDiscardedOnLoad|TestConcurrentIdenticalSubmissionsRunOnce|TestCacheHammer' \
    ./internal/resultcache/ ./internal/atpg/ ./internal/service/

echo "== go test -race -short (fault-sharded ATPG determinism + Theorem 1-4 metamorphic suite)"
# -short keeps the gate fast: 12 theorem pairs and the 5-repeat
# determinism gauntlet. The full 50-pair suite runs race-free in the
# plain `go test ./...` tier-1 pass; drop -short here for a nightly run.
go test -race -short -count=1 -run 'TestParallel|TestTheorem' ./internal/atpg/ ./internal/verify/

echo "== go test -race (dispatch fan-out: retry ladder, migration, degrade, byte-identity at 1/2/4 backends)"
# The distributed chaos gate: failpoint-driven {first-try success,
# retry-then-success, migrate-after-kill, all-backends-down degrade},
# each asserting byte-identity against serial atpg.Run, plus the HTTP
# worker protocol (torn heartbeat, poisoned response, stuck backend).
go test -race -count=1 ./internal/dispatch/ ./cmd/workerd/

echo "== dispatch kill-a-worker smoke (real processes: servd + 2 workerd, SIGKILL one mid-run)"
# Starts two workerd workers (one slowed via a failpoint sleep) and a
# servd fronting both, submits a distributed ATPG job, kills the slow
# worker dead mid-shard, and asserts the merged result is byte-identical
# to an in-process serial reference run.
smoketmp=$(mktemp -d)
trap 'rm -rf "$smoketmp"' EXIT
go build -o "$smoketmp/servd" ./cmd/servd
go build -o "$smoketmp/workerd" ./cmd/workerd
go run ./cmd/dispatchsmoke -servd "$smoketmp/servd" -workerd "$smoketmp/workerd"

echo "== go test -race (iofault chaos: ENOSPC/EIO/torn writes at journal, checkpoint, cache sites)"
# The degraded-mode gate: every write-path op of every durability site
# fails and the job must still complete byte-identical to a fault-free
# run while the site's degraded signal (journal.degraded,
# atpg.checkpoint.errors, cache.disk_errors) fires.
go test -race -count=1 -run 'TestDurabilityFaultsNeverFailJobs|TestJournalDegraded|TestDiskBreaker|TestInjectedFaults|TestPartialWrite' \
    ./internal/service/ ./internal/resultcache/ ./internal/iofault/

echo "== go test -race (watchdog stall smoke: wedged checkpoint write -> requeue -> byte-identical)"
# A job wedged mid-run (blocked checkpoint write) must be detected by
# the stuck-progress watchdog, cancelled, requeued through the backoff
# ladder, and finish byte-identical on the retry; a job that stalls on
# every attempt must fail loudly at the attempt cap.
go test -race -count=1 -run 'TestWatchdog' ./internal/service/

echo "== go test -race -short (checkpoint kill/resume chaos: crash anywhere, resume, byte-identical)"
# -short samples 3 kill points per snapshot set and workers {1,4}; the
# plain tier-1 pass (and a nightly run without -short) widens to up to
# 10 kill points and workers {1,2,4}.
go test -race -short -count=1 -run 'TestCheckpoint' ./internal/atpg/

echo "== go test -race"
go test -race -short ./...

echo "== alloc-regression gate (steady-state Simulate must stay allocation-free)"
# Deliberately WITHOUT -race: testing.AllocsPerRun is meaningless under
# the race detector, so these tests skip themselves there. The budgets
# live in internal/fsim/alloc_test.go (0 serial, O(workers) parallel).
go test -count=1 -run 'TestSimulateSteadyStateAllocs|TestSimulateParallelSteadyStateAllocs' -v ./internal/fsim/ | grep -E '^(=== RUN|--- (PASS|FAIL|SKIP)|ok|FAIL)'

echo "== alloc-regression gate (log ring: <= 1 alloc per record, 0 with a prebuilt string)"
# Same -race caveat; the budget lives in internal/logger/logger_test.go.
go test -count=1 -run 'TestLogSteadyStateAllocs' -v ./internal/logger/ | grep -E '^(=== RUN|--- (PASS|FAIL|SKIP)|ok|FAIL)'

echo "== coverage floor (httpmw + logger must stay >= 90% covered)"
# The middleware and log ring sit on every request path of both
# daemons; the hardening pass that introduced them came with a full
# table-driven suite, and this gate keeps later edits honest.
go test -count=1 -cover ./internal/httpmw/ ./internal/logger/ | awk '
    /coverage:/ {
        pct = 0
        for (i = 1; i <= NF; i++) if ($i ~ /%$/) { sub(/%.*/, "", $i); pct = $i }
        printf "%-24s %s%%\n", $2, pct
        if (pct + 0 < 90) { bad = 1 }
    }
    END { if (bad) { print "coverage below 90% floor" > "/dev/stderr"; exit 1 } }'

echo "== coverage floor (iofault must stay >= 90% covered)"
# The IO fault seam guards every durability write path; its behavior
# under injection is exactly what the degraded-mode guarantees rest on.
go test -count=1 -cover ./internal/iofault/ | awk '
    /coverage:/ {
        pct = 0
        for (i = 1; i <= NF; i++) if ($i ~ /%$/) { sub(/%.*/, "", $i); pct = $i }
        printf "%-24s %s%%\n", $2, pct
        if (pct + 0 < 90) { bad = 1 }
    }
    END { if (bad) { print "coverage below 90% floor" > "/dev/stderr"; exit 1 } }'

echo "== soak smoke (concurrent mixed-kind jobs through one in-process service)"
go run ./cmd/soak -duration 2s -submitters 2

echo "== servd pprof surface (profiler mux serves index + heap off the API listener)"
go test -count=1 -run 'TestPprofMux' ./cmd/servd/

echo "== fuzz smoke (journal replay must survive arbitrary crash residue)"
go test -run='^$' -fuzz=FuzzJournalReplay -fuzztime=5s ./internal/service/

echo "== fuzz smoke (.bench parser: accepted inputs must round-trip)"
go test -run='^$' -fuzz=FuzzParseBench -fuzztime=5s ./internal/netlist/

echo "== fuzz smoke (checkpoint decoder: arbitrary bytes -> clean error or canonical round-trip)"
go test -run='^$' -fuzz=FuzzCheckpointRestore -fuzztime=5s ./internal/atpg/

echo "== fuzz smoke (cache entry decoder: arbitrary bytes -> typed error or canonical round-trip)"
go test -run='^$' -fuzz=FuzzCacheEntryDecode -fuzztime=5s ./internal/resultcache/

echo "== fuzz smoke (shard wire decoder: hostile shard JSON -> clean 400 or validated round-trip)"
go test -run='^$' -fuzz=FuzzShardWireDecode -fuzztime=5s ./internal/dispatch/

echo "check.sh: all green"
