#!/bin/sh
# bench-update.sh — promote benchmarks/latest.txt as the committed
# baseline after reviewing it. Keep baseline and compare runs on the
# same goos/goarch/CPU to avoid false regressions.
set -eu
cd "$(dirname "$0")/.."

if [ ! -f benchmarks/latest.txt ]; then
    echo "bench-update: benchmarks/latest.txt missing; run scripts/bench.sh first" >&2
    exit 1
fi
cp benchmarks/latest.txt benchmarks/baseline.txt
echo "promoted benchmarks/latest.txt -> benchmarks/baseline.txt"
