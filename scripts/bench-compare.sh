#!/bin/sh
# bench-compare.sh — compare benchmarks/latest.txt against the committed
# benchmarks/baseline.txt and fail when any matching benchmark regressed
# by more than BENCH_MAX_REGRESSION_PCT percent (default: 5) in ns/op.
# Benchmarks present in only one file are reported and skipped (the
# -procs suffix makes names hardware-dependent).
set -eu
cd "$(dirname "$0")/.."

MAX="${BENCH_MAX_REGRESSION_PCT:-5}"

if [ ! -f benchmarks/baseline.txt ]; then
    echo "bench-compare: no benchmarks/baseline.txt; nothing to compare" >&2
    exit 0
fi
if [ ! -f benchmarks/latest.txt ]; then
    echo "bench-compare: benchmarks/latest.txt missing; run scripts/bench.sh first" >&2
    exit 1
fi

awk -v max="$MAX" '
    # go test -bench lines: "BenchmarkName-N   iters   12345 ns/op ..."
    FNR == 1 { file++ }
    /^Benchmark/ {
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op") {
                if (file == 1) base[$1] = $i
                else           last[$1] = $i
                break
            }
        }
    }
    END {
        status = 0
        for (name in last) {
            if (!(name in base)) {
                printf "SKIP   %-50s (not in baseline)\n", name
                continue
            }
            pct = base[name] > 0 ? (last[name] - base[name]) * 100.0 / base[name] : 0
            verdict = "ok"
            if (pct > max) { verdict = "REGRESSED"; status = 1 }
            printf "%-9s %-50s %12.0f -> %12.0f ns/op  (%+.1f%%)\n", verdict, name, base[name], last[name], pct
        }
        for (name in base)
            if (!(name in last))
                printf "SKIP   %-50s (not in latest)\n", name
        exit status
    }
' benchmarks/baseline.txt benchmarks/latest.txt

# The ATPG serial/parallel pair: report the measured speedup of each
# worker arm over the serial arm in latest.txt. Informational only --
# on a single-core host the parallel arms can only show overhead, so
# this is not a gate (the byte-identical-output tests are the gate).
awk '
    /^BenchmarkATPGParallel\// {
        name = $1
        sub(/^BenchmarkATPGParallel\//, "", name)
        # Drop the -GOMAXPROCS suffix without eating the worker count
        # (Go omits the suffix entirely when GOMAXPROCS is 1).
        if (name ~ /^serial/) name = "serial"
        else if (match(name, /^workers-[0-9]+/)) name = substr(name, 1, RLENGTH)
        else next
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "ns/op") { ns[name] = $i; order[++n] = name; break }
    }
    END {
        if (!("serial" in ns)) exit 0
        print "ATPG parallel pair (latest.txt):"
        for (i = 1; i <= n; i++) {
            name = order[i]
            if (name == "serial") continue
            printf "  serial / %-12s = %.2fx\n", name, ns["serial"] / ns[name]
        }
    }
' benchmarks/latest.txt
