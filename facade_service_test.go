package retest

import (
	"context"
	"testing"
	"time"

	"repro/internal/netlist"
)

// TestFacadeJobService drives the re-exported job service end to end:
// a DeriveTests job on the paper's Fig. 5 circuit through the public
// facade, with metrics landing in a caller-owned registry.
func TestFacadeJobService(t *testing.T) {
	reg := NewMetricsRegistry()
	svc := NewJobService(JobServiceConfig{Workers: 2, Metrics: reg})
	defer svc.Close()

	id, err := svc.Submit(JobRequest{
		Kind:  JobDeriveTests,
		Bench: netlist.BenchString(netlist.Fig5N2()),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	v, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != "done" {
		t.Fatalf("status %s, error %q", v.Status, v.Error)
	}
	if v.Result.Derive == nil || len(v.Result.Derive.Derived) == 0 {
		t.Fatal("no derived test set in result")
	}
	if reg.Counter("jobs.done.derive_tests").Value() != 1 {
		t.Fatal("caller-owned registry did not record the job")
	}
}
