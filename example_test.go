package retest_test

import (
	"fmt"
	"strings"

	"repro"
)

// The paper's Fig. 2 circuit C1, used by the examples below.
const c1Bench = `
INPUT(A)
INPUT(B)
OUTPUT(Z)
G1 = AND(A, B)
G2 = NOT(Q)
G3 = OR(G1, G2)
Q = DFF(G3)
Z = BUF(Q)
`

func ExampleParseBench() {
	c, err := retest.ParseBench("c1", strings.NewReader(c1Bench))
	if err != nil {
		panic(err)
	}
	fmt.Println(len(c.Inputs), "inputs,", len(c.DFFs), "flip-flop, period", c.MaxCombDelay())
	// Output: 2 inputs, 1 flip-flop, period 4
}

func ExampleMinPeriodPair() {
	c, _ := retest.ParseBench("c1", strings.NewReader(c1Bench))
	pair, before, after, err := retest.MinPeriodPair(c)
	if err != nil {
		panic(err)
	}
	fmt.Printf("period %d -> %d, DFFs %d -> %d, prefix %d\n",
		before, after, len(pair.Original.DFFs), len(pair.Retimed.DFFs),
		pair.PrefixLengthTests())
	// Output: period 4 -> 3, DFFs 1 -> 2, prefix 0
}

func ExampleRetimedPair_CheckPreservation() {
	c, _ := retest.ParseBench("c1", strings.NewReader(c1Bench))
	pair, _, _, _ := retest.MinPeriodPair(c)

	opt := retest.DefaultATPGOptions()
	opt.RandomCount, opt.RandomLength = 8, 32
	res := retest.ATPG(pair.Original, retest.CollapsedFaults(pair.Original), opt)

	report, err := pair.CheckPreservation(res.TestSet, retest.FillZeros, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", len(report.Violations))
	// Output: violations: 0
}

func ExampleVerifyRetiming() {
	c, _ := retest.ParseBench("c1", strings.NewReader(c1Bench))
	pair, _, _, _ := retest.MinPeriodPair(c)
	res, err := retest.VerifyRetiming(pair.Original, pair.Retimed, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("equivalent:", res.Equivalent, "method:", res.Method)
	// Output: equivalent: true method: exact
}

func ExampleParseSeq() {
	seq := retest.ParseSeq("001,000")
	fmt.Println(len(seq), "vectors of width", len(seq[0]))
	// Output: 2 vectors of width 3
}
